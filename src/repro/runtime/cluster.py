"""The simulated PS2Stream cluster: dispatchers, workers and mergers.

This module is the substitute for the paper's Storm-on-EC2 deployment (see
DESIGN.md).  The cluster executes every tuple *for real* — objects are
routed through the gridt index, matched against GI2 posting lists, results
deduplicated by mergers — while time is accounted through the
Definition-1 cost model.  From the accounted busy time the simulator
derives

* **saturation throughput**: total tuples divided by the busy time of the
  bottleneck process (the quantity Figures 6, 7, 11 and 16 plot);
* **latency**: per-tuple service times inflated by a single-server
  queueing factor at a configurable input rate (Figure 8, 12(c), 15);
* **memory**: analytic footprints of the dispatcher routing index and the
  worker GI2 indexes (Figures 9 and 10).

Two execution paths replay a stream:

* :meth:`Cluster.process` / :meth:`Cluster.run` — the per-tuple
  *reference* path.  Every tuple goes through dispatcher routing, worker
  handling and merger delivery one at a time; this is the implementation
  the equivalence tests pin the semantics to.
* :meth:`Cluster.process_batch` / :meth:`Cluster.run_batched` — the
  *batched engine*.  The stream is consumed in windows (``--batch-size``
  on the CLI); inside a window, runs of consecutive objects are routed in
  one pass through :meth:`GridTIndex.route_object_batch` (which memoises
  decisions per ``(cell, term set)`` with version-stamped entries), the
  routed objects are grouped by destination worker and matched via
  :meth:`GI2Index.match_batch` (amortising posting-list purge/setup per
  cell), and match results are delivered to the mergers in bulk.  Query
  insertions and deletions are barriers: they are applied in stream order
  at their original position, so a batched run produces the same
  throughput, worker loads, fanout and match counts as the per-tuple run
  — batching changes wall-clock cost, never simulated semantics.
  Deletion routing reuses the ``(cell, keyword, worker)`` assignments
  remembered from the query's insertion (the keyword choice is
  deterministic, Section IV-C); the caches are invalidated whenever a
  migration or a routing-index swap changes H1.

Either path talks to its workers exclusively through the pluggable
transport layer (:mod:`repro.runtime.transport`): routed work ships as
typed ``RouteBatch`` messages, match results come back as
``MatchResults``, and Section V adjustment rounds open with an
``AdjustBarrier`` fence.  The default ``inprocess`` backend executes the
messages synchronously against local :class:`WorkerNode` objects (the
reference semantics); ``backend="multiprocess"`` on
:class:`ClusterConfig` hosts each worker in its own OS process, with the
coordinator shipping every worker's window batch before collecting any
reply so matching runs on all cores (see docs/ARCHITECTURE.md).

Routing itself can likewise leave the coordinator:
``ClusterConfig.dispatch_backend`` selects the sharded dispatch stage
(:mod:`repro.runtime.dispatch`).  With ``"inline"`` (default) the
coordinator routes every tuple exactly as described above.  With
``"inprocess"`` or ``"multiprocess"`` the window is partitioned across
``num_dispatchers`` dispatcher shards, each owning a replica of the
routing index: shards route their slice (applying every query update so
replicas stay in sync), the coordinator merges the position-tagged
replies back into stream order and replays the same deferred-barrier
segmentation — reports stay byte-identical to inline routing
(``tests/test_dispatch.py``) while the multiprocess backend routes
window ``K+1`` on the shards while the workers still match window ``K``.
Out-of-band H1 mutations (migrations, splits, index swaps) bump a
routing version via :meth:`Cluster.invalidate_routing_caches`; the
replicas are re-synced from the coordinator's authoritative index before
the next routed window.

Result delivery is the third pluggable tier
(:mod:`repro.runtime.merge`, ``ClusterConfig.merger_backend``): match
results are partitioned across ``num_mergers`` merger shards by
``query_id % num_mergers``.  The ``inprocess`` backend hosts the
:class:`MergerNode` shards in the coordinator (the reference, identical
to the historical inline loop); ``"multiprocess"`` runs one OS process
per shard, and — combined with the multiprocess worker backend — the
workers ship their match results straight into the shard inboxes, so
dedup/delivery of window ``K`` overlaps matching of window ``K+1`` and
the coordinator never relays a result (``Cluster.result_hops`` stays
zero; ``tests/test_merge.py``).  Delivered results feed per-shard
subscriber sinks (``ClusterConfig.sink``).

Both paths record per-tuple traces in compact parallel arrays
(:class:`_TraceStore`) rather than one Python object per tuple, so latency
reconstruction over a measurement period stays cheap at stream scale.
Batching happens *within* a measurement period: :meth:`reset_period`
starts a new period and a window never spans one, so the Section V
adjustment machinery observes exactly the same period statistics under
either execution path.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import cycle, islice
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

from ..core.costmodel import CostModel, LoadReport
from ..core.geometry import Rect
from ..core.objects import MatchResult, StreamTuple, TupleKind
from ..indexes.gi2 import CellStats
from ..indexes.grid import CellCoord
from ..indexes.gridt import GridTIndex
from ..partitioning.base import PartitionPlan, WorkloadSample
from ..workload.stream import iter_windows
from .checkpoint import CheckpointStore, RecoveryEvent, RecoveryReport
from .dispatch import DispatchBackend, RoutedWindow, group_triples, make_dispatch
from .dispatcher import DispatcherNode, RoutingDecision
from .fabric import FaultPlan, TransportError, load_manifest
from .protocol import barrier_context, mutates_routing
from .merge import MergeBackend, SinkSpec, make_merge
from .merger import MergerNode
from .metrics import LatencyBuckets, LatencyTracker, RunReport, utilization_latency
from .profiling import (
    ProfileReport,
    ProfilingSpec,
    RouteCounters,
    StackSampler,
)
from .telemetry import (
    GaugeSample,
    LifecycleEvent,
    SpanHop,
    TelemetryEvent,
    TelemetryHub,
    TelemetrySpec,
    TierTimeseries,
    WindowSpan,
)
from .transport import (
    DeleteById,
    DeleteQuery,
    InsertPairs,
    InsertQuery,
    MatchObjects,
    MatchOne,
    MatchResults,
    MergerStats,
    RouteBatch,
    StatsReport,
    Transport,
    make_transport,
)
from .worker import QueryAssignment, WorkerNode

__all__ = [
    "Cluster",
    "ClusterConfig",
    "GlobalAdjusterLike",
    "LocalAdjusterLike",
    "MigrationRecord",
    "PeriodSampleCollector",
]


class LocalAdjusterLike(Protocol):
    """What the closed loop needs from a Section V-A local adjuster
    (structural — the concrete adjusters live in :mod:`repro.adjustment`,
    which imports this module, so the dependency cannot point the other
    way)."""

    def adjust(self, cluster: "Cluster") -> object: ...


class GlobalAdjusterLike(Protocol):
    """What the closed loop needs from a Section V-B global adjuster."""

    def adjust(self, cluster: "Cluster", sample: Optional[WorkloadSample]) -> object: ...


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and calibration of the simulated cluster.

    The defaults mirror the paper's testbed: 4 dispatchers, 8 workers and
    GI2/gridt granularity ``2^6``.  ``cost_unit_seconds`` converts the
    abstract cost units of :class:`~repro.core.costmodel.CostModel` into
    seconds; it was calibrated so that one object-handling unit corresponds
    to a few tens of microseconds of Python matching work.
    """

    num_dispatchers: int = 4
    num_workers: int = 8
    num_mergers: int = 2
    gi2_granularity: int = 64
    gridt_granularity: int = 64
    cost_model: CostModel = field(default_factory=CostModel)
    #: Seconds per cost unit.
    cost_unit_seconds: float = 20e-6
    #: Input rate (as a fraction of saturation) at which latency is reported.
    latency_load_fraction: float = 0.6
    #: Network / framework overhead per hop (source -> dispatcher -> worker),
    #: matching the millisecond-scale per-tuple latency floor of a Storm
    #: deployment on EC2.
    network_hop_ms: float = 4.0
    #: Bandwidth available for migrating queries between workers.
    migration_bandwidth_bytes_per_sec: float = 20e6
    #: Fixed network/coordination overhead per migration.
    migration_fixed_seconds: float = 0.05
    #: Worker transport backend: ``"inprocess"`` hosts every WorkerNode in
    #: the coordinator's interpreter (the reference), ``"multiprocess"``
    #: runs each worker in its own OS process (real multi-core matching),
    #: ``"socket"`` reaches ``repro serve --role worker`` endpoints over
    #: TCP (addresses from :attr:`manifest`, loopback-spawned otherwise).
    backend: str = "inprocess"
    #: Dispatch backend: ``"inline"`` routes on the coordinator (the
    #: reference), ``"inprocess"`` / ``"multiprocess"`` / ``"socket"``
    #: shard routing across ``num_dispatchers`` replicas of the routing
    #: index — the latter two one OS process (or TCP endpoint) per shard.
    dispatch_backend: str = "inline"
    #: Merger backend: ``"inprocess"`` hosts the ``num_mergers`` merger
    #: shards in the coordinator's interpreter (the reference),
    #: ``"multiprocess"`` one OS process per shard — combined with the
    #: multiprocess worker backend, workers ship match results directly
    #: to the shards and the coordinator never touches a result —
    #: ``"socket"`` one TCP endpoint per shard.
    merger_backend: str = "inprocess"
    #: Host manifest for the socket backends: a path to the JSON manifest
    #: (see :func:`repro.runtime.fabric.load_manifest`) or a
    #: :class:`~repro.runtime.fabric.ClusterManifest`.  Tiers without
    #: manifest addresses fall back to coordinator-spawned loopback
    #: ``serve`` processes.
    manifest: Optional[Any] = None
    #: Subscriber sink attached to every merger shard (null / memory /
    #: jsonl / callback; see :mod:`repro.runtime.merge`).
    sink: SinkSpec = field(default_factory=SinkSpec)
    #: How many recent (query, object) keys each merger shard remembers
    #: for deduplication.
    merger_dedup_window: int = 100_000
    #: Checkpoint the workers' query assignments every N tuples (0 — the
    #: default — disables checkpointing *and* worker recovery).  Checkpoints
    #: ride the same quiescent point as adjustment rounds: the closed-loop
    #: driver fences all three tiers, snapshots every worker's
    #: ``(cell, posting keyword)`` assignments into the cluster's
    #: :class:`~repro.runtime.checkpoint.CheckpointStore`, and an
    #: adjustment round doubles as a checkpoint.  A fault-free
    #: checkpointed run stays byte-identical across backends
    #: (``RunReport.recovery`` records only checkpoint counts and
    #: recovery events, never wall-clock state).
    checkpoint_every: int = 0
    #: Optional JSONL path the checkpoint store also appends encoded
    #: checkpoints to (for post-mortem inspection / cold restore).
    checkpoint_path: Optional[str] = None
    #: Chaos-harness fault plan: per-role
    #: :class:`~repro.runtime.fabric.FaultSpec` entries installed into the
    #: worker / merger / dispatcher fleets at construction (no-op on the
    #: in-process backends, which have no fleet to kill).
    fault_plan: Optional[FaultPlan] = None
    #: Runtime telemetry (:mod:`repro.runtime.telemetry`): ``None`` — the
    #: default — disables it entirely (zero hot-path work beyond one
    #: ``is None`` check per window).  When set, every batched window is
    #: traced route → match → merge, per-tier gauges are drained at
    #: window boundaries and adjustment barriers, and lifecycle events
    #: (adjustments, checkpoints, recoveries) are recorded — without
    #: perturbing reports: telemetry only *reads* the simulated cost
    #: accounting, and its control messages are exempt from chaos fault
    #: counting.
    telemetry: Optional[TelemetrySpec] = None
    #: Hot-loop profiling (:mod:`repro.runtime.profiling`): ``None`` — the
    #: default — disables it entirely (one ``is None`` check per window /
    #: batch).  When set, deterministic cost counters attach to the three
    #: hot paths (GI2 matching, GridT routing, merger dedup) and
    #: :meth:`Cluster.profile_report` drains them coordinator-side;
    #: ``sample=True`` additionally runs the wall-clock stack sampler in
    #: the coordinator process.  Like telemetry, profiling never perturbs
    #: a report — counters are pure counts outside the Definition-1
    #: accounting.
    profiling: Optional[ProfilingSpec] = None


@dataclass(frozen=True)
class MigrationRecord:
    """Outcome of one cell (or keyword) migration between two workers.

    ``queries_moved`` counts queries whose postings lived entirely inside
    the shipped ``(cell, posting keyword)`` pairs — they leave the source
    worker.  ``queries_copied`` counts queries that keep a remainder on
    the source (postings in cells/keywords that stay); the target receives
    only their shipped pairs, never the full footprint.  Both kinds cross
    the network once, so the migration cost of Section V (``bytes_moved``,
    ``seconds``) covers their sum.
    """

    source_worker: int
    target_worker: int
    cells: Tuple[CellCoord, ...]
    queries_moved: int
    bytes_moved: int
    seconds: float
    queries_copied: int = 0

    @property
    def queries_shipped(self) -> int:
        """Total queries transferred over the network (moved + copied)."""
        return self.queries_moved + self.queries_copied


class _TraceStore:
    """Compact per-period trace of dispatcher / worker costs.

    Latency reconstruction needs, per tuple, the dispatcher that routed it
    (id + charged cost) and the per-worker handling costs.  Holding one
    Python object per tuple dominates memory at stream scale, so the store
    keeps five parallel arrays instead: dispatcher ids/costs indexed by
    tuple, and a flattened (worker id, worker cost) sequence sliced per
    tuple through an offsets array.
    """

    __slots__ = (
        "dispatcher_ids",
        "dispatcher_costs",
        "worker_offsets",
        "worker_ids",
        "worker_costs",
    )

    def __init__(self) -> None:
        self.dispatcher_ids = array("i")
        self.dispatcher_costs = array("d")
        self.worker_offsets = array("l", [0])
        self.worker_ids = array("i")
        self.worker_costs = array("d")

    def append(
        self,
        dispatcher_id: int,
        dispatcher_cost: float,
        worker_items: Iterable[Tuple[int, float]],
    ) -> None:
        self.dispatcher_ids.append(dispatcher_id)
        self.dispatcher_costs.append(dispatcher_cost)
        worker_ids = self.worker_ids
        worker_costs = self.worker_costs
        for worker, cost in worker_items:
            worker_ids.append(worker)
            worker_costs.append(cost)
        self.worker_offsets.append(len(worker_ids))

    def extend(
        self,
        dispatcher_ids: Iterable[int],
        dispatcher_costs: Iterable[float],
        worker_items_per_tuple: Iterable[Optional[Iterable[Tuple[int, float]]]],
    ) -> None:
        """Bulk-append one window of traces (batched engine)."""
        self.dispatcher_ids.extend(dispatcher_ids)
        self.dispatcher_costs.extend(dispatcher_costs)
        worker_ids = self.worker_ids
        worker_costs = self.worker_costs
        offsets = self.worker_offsets
        for items in worker_items_per_tuple:
            if items:
                for worker, cost in items:
                    worker_ids.append(worker)
                    worker_costs.append(cost)
            offsets.append(len(worker_ids))

    def __len__(self) -> int:
        return len(self.dispatcher_ids)

    def clear(self) -> None:
        self.dispatcher_ids = array("i")
        self.dispatcher_costs = array("d")
        self.worker_offsets = array("l", [0])
        self.worker_ids = array("i")
        self.worker_costs = array("d")


class _SpanState:
    """Accumulator of one in-flight window's telemetry span.

    The deferred-barrier engine interleaves routing with matching and
    may flush several segments per window, so the match and merge hops
    accumulate across flushes; the route hop is the window's residual
    wall time (see :class:`~repro.runtime.telemetry.SpanHop`).
    """

    __slots__ = (
        "seq",
        "base",
        "size",
        "opened_ms",
        "match_ms",
        "merge_ms",
        "match_started_ms",
        "merge_started_ms",
        "match_endpoints",
    )

    def __init__(self, seq: int, base: int, size: int, opened_ms: float) -> None:
        self.seq = seq
        self.base = base
        self.size = size
        self.opened_ms = opened_ms
        self.match_ms = 0.0
        self.merge_ms = 0.0
        self.match_started_ms = -1.0
        self.merge_started_ms = -1.0
        self.match_endpoints = 0


class PeriodSampleCollector:
    """Workload sample of the current measurement period (closed loop).

    The global adjuster re-runs the partitioning algorithm on "a recent
    sample" (Section V-B).  When a global adjuster is attached to the
    closed-loop driver, the cluster collects the period's traffic here —
    capped so a long period cannot balloon — and hands a
    :class:`~repro.partitioning.base.WorkloadSample` to the adjuster at
    every window barrier, then starts over for the next period.
    """

    __slots__ = ("bounds", "max_objects", "max_queries", "_objects", "_insertions", "_deletions")

    def __init__(self, bounds: Rect, *, max_objects: int = 2000, max_queries: int = 1000) -> None:
        self.bounds = bounds
        self.max_objects = max_objects
        self.max_queries = max_queries
        self._objects: List = []
        self._insertions: List = []
        self._deletions: List = []

    def observe(self, items: Iterable[StreamTuple]) -> None:
        """Record one window of tuples (first-N per kind per period)."""
        objects = self._objects
        insertions = self._insertions
        deletions = self._deletions
        max_objects = self.max_objects
        max_queries = self.max_queries
        for item in items:
            if item.kind is TupleKind.OBJECT:
                if len(objects) < max_objects:
                    objects.append(item.payload)
            elif item.kind is TupleKind.INSERT:
                if len(insertions) < max_queries:
                    insertions.append(item.payload.query)
            elif len(deletions) < max_queries:
                deletions.append(item.payload.query)

    def sample(self) -> Optional[WorkloadSample]:
        """The period's sample, or ``None`` when nothing was observed."""
        if not self._objects and not self._insertions:
            return None
        return WorkloadSample(
            objects=list(self._objects),
            insertions=list(self._insertions),
            deletions=list(self._deletions),
            bounds=self.bounds,
        )

    def reset(self) -> None:
        """Forget the period (called after each adjustment barrier)."""
        self._objects = []
        self._insertions = []
        self._deletions = []


class Cluster:
    """A PS2Stream deployment over simulated processes."""

    def __init__(self, plan: PartitionPlan, config: Optional[ClusterConfig] = None) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.plan = plan
        self.bounds: Rect = plan.bounds
        self.routing_index: GridTIndex = plan.to_gridt(self.config.gridt_granularity)
        # Each dispatcher holds (a reference to) the routing structure; the
        # memory report charges a full copy per dispatcher, as in the paper.
        self.dispatchers: List[DispatcherNode] = [
            DispatcherNode(index, self.routing_index)
            for index in range(self.config.num_dispatchers)
        ]
        self._closed = False
        manifest = self.config.manifest
        if isinstance(manifest, str):
            manifest = load_manifest(manifest)
        # Hot-loop profiling: only a plain bool flows into the tier
        # factories (and across Init handshakes); the spec itself stays
        # coordinator-side.  The inline routing counters attach to the
        # authoritative index here — and re-attach whenever the index is
        # replaced (replace_routing_index).
        profiling = self.config.profiling
        profile_on = profiling is not None and profiling.enabled
        if profile_on:
            self.routing_index.profile = RouteCounters()
        self._sampler: Optional[StackSampler] = None
        # The merge backend owns the merger tier; it is built before the
        # transport because the multiprocess worker hosts inherit the
        # shard inboxes at spawn (direct worker→merger result shipping).
        self._merge: MergeBackend = make_merge(
            self.config.merger_backend,
            self.config.num_mergers,
            sink=self.config.sink,
            dedup_window=self.config.merger_dedup_window,
            addresses=manifest.mergers if manifest else None,
            profiling=profile_on,
        )
        # The transport owns the worker fleet: in-process workers are real
        # WorkerNode objects, fabric workers are per-endpoint proxies.
        # Coordinator code only ever talks to them through the transport's
        # exchange()/stats surface or through the handles in self.workers.
        try:
            self.transport: Transport = make_transport(
                self.config.backend,
                list(range(self.config.num_workers)),
                bounds=self.bounds,
                granularity=self.config.gi2_granularity,
                cost_model=self.config.cost_model,
                term_statistics=plan.statistics,
                merger_endpoints=self._merge.worker_endpoints(),
                addresses=manifest.workers if manifest else None,
                profiling=profile_on,
            )
        except Exception:
            self._merge.close()
            raise
        self.workers: Dict[int, WorkerNode] = self.transport.workers  # type: ignore[assignment]
        #: Match results the coordinator itself relayed to the merger tier.
        #: Zero in the full multiprocess deployment, where workers ship
        #: results directly to the merger shards.
        self._result_hops = 0
        self._traces = _TraceStore()
        self._next_dispatcher = 0
        self._tuples_processed = 0
        self._objects = 0
        self._insertions = 0
        self._deletions = 0
        self._matches_produced = 0
        self._object_fanout_total = 0
        self._query_fanout_total = 0
        self.migrations: List[MigrationRecord] = []
        # Batched-engine caches: resolved H1 lookups and per-query insertion
        # plans (reused when the deletion arrives).  Both are only valid
        # while H1 is static; invalidate_routing_caches() drops them.
        self._h1_memo: Dict[Tuple[CellCoord, str], int] = {}
        self._insertion_assignments: Dict[
            int, Tuple[Dict[int, List[Tuple[CellCoord, str]]], int]
        ] = {}
        self._cells_aligned = self._compute_cells_aligned()
        # Sharded dispatch: shard replicas route off the coordinator; the
        # routing version stamps every out-of-band H1/H2 mutation so
        # _ensure_dispatch_synced() knows when to re-ship a snapshot.
        self._routing_version = 0
        try:
            self._dispatch: Optional[DispatchBackend] = make_dispatch(
                self.config.dispatch_backend,
                self.config.num_dispatchers,
                addresses=manifest.dispatchers if manifest else None,
                profiling=profile_on,
            )
        except Exception:
            self.transport.close()
            self._merge.close()
            raise
        # Checkpoint/recovery state: the store holds barrier-point
        # snapshots of every worker's query assignments, the update log
        # records which worker received each query update since the last
        # checkpoint (so recovery can replay the dead worker's share),
        # and the events feed RunReport.recovery.
        self._checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(path=self.config.checkpoint_path)
            if self.config.checkpoint_every > 0
            else None
        )
        self._update_log: List[Tuple[int, Any]] = []
        self._recovery_events: List[RecoveryEvent] = []
        # Runtime telemetry: a coordinator-side hub (bounded ring +
        # optional JSONL sink) fed by window spans, barrier-point gauge
        # drains and lifecycle events.  None (the default) keeps every
        # hot path on a single ``is None`` check.
        telemetry = self.config.telemetry
        self._telemetry: Optional[TelemetryHub] = (
            TelemetryHub(telemetry) if telemetry is not None and telemetry.enabled else None
        )
        self._window_seq = 0
        self._span_state: Optional[_SpanState] = None
        fault_plan = self.config.fault_plan
        if fault_plan:
            self.transport.install_fault_plan(fault_plan.for_role("worker"))
            self._merge.install_fault_plan(fault_plan.for_role("merger"))
            if self._dispatch is not None:
                self._dispatch.install_fault_plan(fault_plan.for_role("dispatcher"))
        # The wall-clock stack sampler starts last so a failed tier
        # construction never leaks its thread; close() stops it.
        if profiling is not None and profile_on and profiling.sample:
            self._sampler = StackSampler(profiling.sample_interval_ms)
            self._sampler.start()

    def _compute_cells_aligned(self) -> bool:
        """True when the routing grid matches the workers' GI2 grids.

        When aligned, the dispatcher's ``(cell, keyword)`` assignments can
        be installed verbatim into a worker's GI2 index; otherwise workers
        fall back to registering routed keywords in every overlapping cell
        of their own grid.
        """
        grid = getattr(self.routing_index, "grid", None)
        if grid is None:
            return False
        return all(worker.index.grid == grid for worker in self.workers.values())

    def invalidate_routing_caches(self) -> None:
        """Drop caches that assume a static H1 (call after H1 changes).

        The gridt object-route memo is version-guarded (H2 changes never
        serve stale entries), but its stale entries would linger as dead
        memory, so it is flushed here as well.  The routing version bump
        marks every dispatch-shard replica stale; the next routed window
        (or memory report) re-syncs them from the authoritative index.
        """
        self._routing_version += 1
        self._h1_memo.clear()
        self._insertion_assignments.clear()
        clear = getattr(self.routing_index, "clear_route_caches", None)
        if clear is not None:
            clear()
        else:
            cache = getattr(self.routing_index, "route_cache", None)
            if cache is not None:
                cache.clear()

    # ------------------------------------------------------------------
    # Sharded dispatch plumbing
    # ------------------------------------------------------------------
    def _sharded_routing(self) -> bool:
        """Whether routing currently runs on the dispatch shards.

        Requires a sharded backend, a plain aligned gridt index (the same
        precondition as the deferred-barrier fast path — the shard merge
        replays that segmentation).  Other deployments (dual routing
        during a global drain, unaligned grids) route inline on the
        coordinator; every inline update then marks the replicas stale so
        they re-sync when sharding resumes.
        """
        return (
            self._dispatch is not None
            and self._cells_aligned
            and type(self.routing_index) is GridTIndex
        )

    def _ensure_dispatch_synced(self) -> None:
        """Re-ship the routing index to the shards if the version moved."""
        dispatch = self._dispatch
        if dispatch is not None and dispatch.synced_version != self._routing_version:
            dispatch.sync(self.routing_index, self._routing_version)

    def _mark_routing_mutated(self) -> None:
        """Note an inline H2 mutation so stale shard replicas re-sync."""
        if self._dispatch is not None:
            self._routing_version += 1

    def _route_tuple_sharded(
        self, slot: int, item: StreamTuple, dispatcher: DispatcherNode
    ) -> RoutingDecision:
        """Route one tuple on its dispatch shard (per-tuple sharded path).

        The shard owning dispatcher slot ``slot`` computes the decision on
        its replica (updates are broadcast so every replica applies the H2
        delta); the coordinator charges the matching
        :class:`DispatcherNode` with the Definition-1 routing cost and
        applies the update's plan to its authoritative index — exactly
        what :meth:`DispatcherNode.route` does inline, so the per-tuple
        reference semantics carry over byte for byte.
        """
        self._ensure_dispatch_synced()
        assert self._dispatch is not None
        routed = self._dispatch.route_tuple(slot, item)
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST
        if item.kind is TupleKind.OBJECT:
            terms = len(item.payload.terms)
            cost = tuple_cost + probe_cost * (terms if terms > 1 else 1)
            discarded = not routed.workers
            dispatcher.account_objects(1, 1 if discarded else 0, cost)
            return RoutingDecision(workers=routed.workers, cost=cost, discarded=discarded)
        cells = routed.cells
        cost = tuple_cost + probe_cost * (cells if cells > 1 else 1)
        per_worker = routed.plan
        assert per_worker is not None
        if item.kind is TupleKind.INSERT:
            dispatcher.account_insertion(cost)
            self.routing_index.apply_insertion(
                (coord, key, worker)
                for worker, pairs in per_worker.items()
                for coord, key in pairs
            )
            return RoutingDecision(workers=routed.workers, cost=cost, assignments=per_worker)
        dispatcher.account_deletion(cost)
        self.routing_index.apply_deletion_pairs(per_worker)
        return RoutingDecision(workers=routed.workers, cost=cost)

    def _submit_window(self, items: Sequence[StreamTuple]) -> Tuple[int, int]:
        """Reserve the window's dispatcher slots and submit it to the shards."""
        self._ensure_dispatch_synced()
        assert self._dispatch is not None
        base = self._next_dispatcher
        self._next_dispatcher = (base + len(items)) % len(self.dispatchers)
        return self._dispatch.submit_window(items, base), base

    # ------------------------------------------------------------------
    # Tuple processing (per-tuple reference path)
    # ------------------------------------------------------------------
    def process(self, item: StreamTuple, *, trace: bool = True) -> Set[int]:
        """Run one tuple through dispatcher, workers and mergers.

        Returns the set of workers that handled the tuple.
        """
        slot = self._next_dispatcher
        dispatcher = self.dispatchers[slot]
        self._next_dispatcher = (slot + 1) % len(self.dispatchers)
        if self._sharded_routing():
            decision = self._route_tuple_sharded(slot, item, dispatcher)
        else:
            decision = dispatcher.route(item)
            if item.kind is not TupleKind.OBJECT:
                # Inline update while shard replicas exist: their H2 no
                # longer matches the coordinator's, so mark them stale.
                self._mark_routing_mutated()
        worker_costs: List[Tuple[int, float]] = []
        handled: Set[int] = set()
        results: List[MatchResult] = []
        produced = 0
        assignments = decision.assignments
        kind = item.kind
        known_workers = self.workers
        batches: Dict[int, RouteBatch] = {}
        log = self._update_log if self._checkpoints is not None else None
        for worker_id in decision.workers:
            if worker_id not in known_workers:
                continue
            if kind is TupleKind.OBJECT:
                op = MatchOne(item.payload)
            elif kind is TupleKind.INSERT:
                pairs = assignments.get(worker_id) if assignments is not None else None
                op = InsertQuery(item.payload, pairs, self._cells_aligned)
                if log is not None:
                    # Exact-pairs registrations replay via install_queries
                    # (which extends an existing registration); a
                    # full-footprint insert (pairs unknown) replays as the
                    # op itself — idempotent because every routed worker
                    # registers the identical full footprint.
                    log.append(
                        (worker_id, QueryAssignment(item.payload.query, tuple(pairs), True))
                        if pairs is not None
                        else (worker_id, op)
                    )
            else:
                op = DeleteQuery(item.payload)
                if log is not None:
                    log.append((worker_id, item.payload.query_id))
            batches[worker_id] = RouteBatch((op,))
        if batches:
            cost_model = self.config.cost_model
            for worker_id, replies in self.transport.exchange(batches).items():
                handled.add(worker_id)
                if kind is TupleKind.OBJECT:
                    reply = replies[0]
                    assert reply is not None
                    results.extend(reply.results)
                    produced += reply.produced_count
                    cost = reply.costs[0]
                elif kind is TupleKind.INSERT:
                    cost = cost_model.insert_handling
                else:
                    cost = cost_model.delete_handling
                worker_costs.append((worker_id, cost))

        if results or produced:
            self._deliver_results(results, produced)

        self._tuples_processed += 1
        if item.kind is TupleKind.OBJECT:
            self._objects += 1
            self._object_fanout_total += len(handled)
        elif item.kind is TupleKind.INSERT:
            self._insertions += 1
            self._query_fanout_total += len(handled)
        else:
            self._deletions += 1
        if trace:
            self._traces.append(dispatcher.dispatcher_id, decision.cost, worker_costs)
        return handled

    def run(
        self,
        tuples: Iterable[StreamTuple],
        *,
        trace: bool = True,
        adjust_every: int = 0,
        local_adjuster: Optional["LocalAdjusterLike"] = None,
        global_adjuster: Optional["GlobalAdjusterLike"] = None,
    ) -> RunReport:
        """Process a tuple stream one tuple at a time (reference path).

        With ``adjust_every > 0`` the stream runs through the closed-loop
        driver: after every ``adjust_every`` tuples the attached adjusters
        run one Section V round (see :meth:`run_adjustment`).  This is the
        per-tuple reference the batched closed loop is equivalence-tested
        against.  With ``checkpoint_every > 0`` on the config the driver
        additionally snapshots worker assignments at window barriers (and
        recovers dead workers from the latest snapshot).
        """
        if adjust_every > 0 or self._checkpoints is not None:
            return self._run_with_adjustment(
                tuples,
                batch_size=1,
                trace=trace,
                adjust_every=adjust_every,
                local_adjuster=local_adjuster,
                global_adjuster=global_adjuster,
            )
        for item in tuples:
            self.process(item, trace=trace)
        return self.report()

    # ------------------------------------------------------------------
    # Batched execution engine
    # ------------------------------------------------------------------
    def run_batched(
        self,
        tuples: Iterable[StreamTuple],
        *,
        batch_size: int = 256,
        trace: bool = True,
        adjust_every: int = 0,
        local_adjuster: Optional["LocalAdjusterLike"] = None,
        global_adjuster: Optional["GlobalAdjusterLike"] = None,
    ) -> RunReport:
        """Process a tuple stream in windows of ``batch_size`` tuples.

        Semantically equivalent to :meth:`run` (same throughput, loads,
        fanout and match counts); see the module docstring for what the
        batched engine amortises.  With ``adjust_every > 0`` the closed
        loop runs Section V adjustment rounds at window barriers: windows
        are clipped so none spans an adjustment point, hence the schedule
        — and every simulated outcome — matches the per-tuple path with
        the same ``adjust_every``.  Checkpointed runs also use the
        closed-loop driver (checkpoints need the same window barriers;
        recovery's at-most-one-lost-window guarantee rules out the
        pipelined overlap below).
        """
        if adjust_every > 0 or self._checkpoints is not None:
            return self._run_with_adjustment(
                tuples,
                batch_size=batch_size,
                trace=trace,
                adjust_every=adjust_every,
                local_adjuster=local_adjuster,
                global_adjuster=global_adjuster,
            )
        if batch_size <= 1:
            return self.run(tuples, trace=trace)
        dispatch = self._dispatch
        if dispatch is None or not dispatch.supports_pipelining:
            for window in iter_windows(tuples, batch_size):
                self.process_batch(window, trace=trace)
            return self.report()
        # Pipelined sharded replay: collect window K's routing, submit
        # window K+1 to the shards, then run worker matching of K — shard
        # routing of the next window overlaps worker matching of the
        # current one (dispatcher→worker pipelining).  At most one window
        # is ever in flight, and K's worker ops still ship before K+1's.
        pending: Optional[Tuple[Sequence[StreamTuple], int, int]] = None
        for window in iter_windows(tuples, batch_size):
            if not self._sharded_routing():
                if pending is not None:
                    items, base, seq = pending
                    self._apply_routed_window(
                        items, base, dispatch.collect_window(seq), trace
                    )
                    pending = None
                self.process_batch(window, trace=trace)
                continue
            if pending is None:
                seq, base = self._submit_window(window)
                pending = (window, base, seq)
                continue
            items, prev_base, prev_seq = pending
            routed = dispatch.collect_window(prev_seq)
            seq, base = self._submit_window(window)
            pending = (window, base, seq)
            self._apply_routed_window(items, prev_base, routed, trace)
        if pending is not None:
            items, base, seq = pending
            self._apply_routed_window(items, base, dispatch.collect_window(seq), trace)
        return self.report()

    # ------------------------------------------------------------------
    # Closed-loop dynamic adjustment driver (Section V)
    # ------------------------------------------------------------------
    def _run_with_adjustment(
        self,
        tuples: Iterable[StreamTuple],
        *,
        batch_size: int,
        trace: bool,
        adjust_every: int,
        local_adjuster: Optional["LocalAdjusterLike"],
        global_adjuster: Optional["GlobalAdjusterLike"],
    ) -> RunReport:
        """Replay the stream with adjustment rounds every ``adjust_every`` tuples.

        Both execution paths share this driver: ``batch_size <= 1`` steps
        tuple by tuple, larger sizes use :meth:`process_batch` with windows
        clipped at the adjustment boundary, so an adjustment round always
        sits on a window barrier and fires at the exact same stream
        position under either engine.

        Checkpointing rides the same loop as a second cadence: windows
        are additionally clipped at ``checkpoint_every`` boundaries, a
        checkpoint is taken at stream start and at every boundary, and an
        adjustment round doubles as a checkpoint (both counters reset —
        the adjusters may have migrated assignments, so the pre-round
        snapshot is stale anyway).  Every window and every round runs
        under worker-death recovery (:meth:`_recover_from`): at most the
        in-flight window is lost.
        """
        checkpoint_every = (
            self.config.checkpoint_every if self._checkpoints is not None else 0
        )
        if adjust_every <= 0 and checkpoint_every <= 0:
            raise ValueError("adjust_every must be positive")
        collector = (
            PeriodSampleCollector(self.bounds) if global_adjuster is not None else None
        )
        iterator = iter(tuples)
        batched = batch_size > 1
        since_adjustment = 0
        since_checkpoint = 0
        if self._checkpoints is not None and not len(self._checkpoints):
            self._checkpoint_recovering()
        while True:
            if batched:
                take = batch_size
                if adjust_every > 0:
                    remaining = adjust_every - since_adjustment
                    take = remaining if remaining < take else take
                if checkpoint_every > 0:
                    remaining = checkpoint_every - since_checkpoint
                    take = remaining if remaining < take else take
                window: Sequence[StreamTuple] = list(islice(iterator, take))
                if not window:
                    break
            else:
                item = next(iterator, None)
                if item is None:
                    break
                window = (item,)
            self._process_window_recovering(window, trace, batched)
            if collector is not None:
                collector.observe(window)
            since_adjustment += len(window)
            since_checkpoint += len(window)
            if adjust_every > 0 and since_adjustment >= adjust_every:
                self._run_adjustment_recovering(
                    local_adjuster, global_adjuster, collector
                )
                if collector is not None:
                    collector.reset()
                since_adjustment = 0
                since_checkpoint = 0
            elif checkpoint_every > 0 and since_checkpoint >= checkpoint_every:
                self._checkpoint_recovering()
                since_checkpoint = 0
        return self.report()

    def _process_window_recovering(
        self, window: Sequence[StreamTuple], trace: bool, batched: bool
    ) -> None:
        """Process one window, recovering a dead worker on the way.

        A worker death surfaces from the transport exchange as a
        :class:`TransportError` with ``died=True``; the window in flight
        is abandoned (its tuples are the at-most-one-window loss the
        recovery contract permits — accounted in the
        :class:`~repro.runtime.checkpoint.RecoveryEvent`), the dead
        worker's partition is re-installed from the latest checkpoint and
        the run resumes with the next window.
        """
        try:
            if batched:
                self.process_batch(window, trace=trace)
            else:
                self.process(window[0], trace=trace)
        except TransportError as exc:
            self._recover_from(exc, window, during_adjustment=False)

    def _run_adjustment_recovering(
        self,
        local_adjuster: Optional["LocalAdjusterLike"],
        global_adjuster: Optional["GlobalAdjusterLike"],
        collector: Optional[PeriodSampleCollector],
    ) -> None:
        """One adjustment round under recovery; doubles as a checkpoint.

        A worker dying at the round's barrier fence (or under an
        adjuster's migrations) aborts the rest of the round — the
        recovery itself rebalances the lost partition, and no window was
        in flight, so nothing is lost.
        """
        try:
            self.run_adjustment(
                local_adjuster=local_adjuster,
                global_adjuster=global_adjuster,
                sample=collector.sample() if collector is not None else None,
            )
        except TransportError as exc:
            self._recover_from(exc, (), during_adjustment=True)
        else:
            if self._checkpoints is not None:
                self._take_checkpoint()

    def _checkpoint_recovering(self) -> None:
        """Take one scheduled checkpoint, recovering a death at its fence."""
        try:
            self.checkpoint_now()
        except TransportError as exc:
            self._recover_from(exc, (), during_adjustment=True)

    @barrier_context
    def checkpoint_now(self) -> None:
        """Snapshot every worker's query assignments at a quiescent point.

        Fences all three tiers exactly like :meth:`run_adjustment` (so
        every shipped window is applied and every in-flight result is
        merged), then records one
        :class:`~repro.runtime.checkpoint.Checkpoint` in the store and
        clears the update log — the log only ever spans
        checkpoint-to-checkpoint.
        """
        if self._checkpoints is None:
            raise ValueError("checkpointing is disabled (checkpoint_every == 0)")
        self.transport.barrier()
        if self._dispatch is not None:
            self._dispatch.barrier()
        self._merge.barrier()
        self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Record the fleet's assignments (caller guarantees quiescence)."""
        store = self._checkpoints
        assert store is not None
        store.record(self.transport.snapshot_assignments(), self._tuples_processed)
        self._update_log.clear()
        self._record_lifecycle(
            "checkpoint", detail="tuples=%d" % self._tuples_processed
        )

    def _recover_from(
        self,
        exc: TransportError,
        window: Sequence[StreamTuple],
        *,
        during_adjustment: bool,
    ) -> None:
        """Recover from one worker death, or re-raise anything else.

        Only a *worker* endpoint death is recoverable, and only when a
        checkpoint exists to restore from and at least one worker
        survives; every other transport failure (merger/dispatcher death,
        remote exceptions, a second fault during recovery) propagates.
        The abandoned window's object/query ids are recorded on the
        :class:`~repro.runtime.checkpoint.RecoveryEvent` so tests (and
        delivery accounting) can subtract exactly the lost in-flight
        work.  A fresh checkpoint is taken immediately after recovery —
        the restored assignment is the new baseline.
        """
        store = self._checkpoints
        worker_id = exc.endpoint_id
        if (
            store is None
            or store.latest() is None
            or not exc.died
            or exc.label != "worker"
            or worker_id is None
            or worker_id not in self.workers
            or len(self.workers) <= 1
        ):
            raise exc
        lost_object_ids: List[int] = []
        lost_query_ids: List[int] = []
        for item in window:
            if item.kind is TupleKind.OBJECT:
                lost_object_ids.append(item.payload.object_id)
            else:
                lost_query_ids.append(item.payload.query_id)
        self.recover_worker(
            worker_id,
            lost_tuples=len(window),
            lost_object_ids=tuple(lost_object_ids),
            lost_query_ids=tuple(lost_query_ids),
            during_adjustment=during_adjustment,
        )
        self._take_checkpoint()

    @mutates_routing
    def recover_worker(
        self,
        worker_id: int,
        *,
        lost_tuples: int = 0,
        lost_object_ids: Tuple[int, ...] = (),
        lost_query_ids: Tuple[int, ...] = (),
        during_adjustment: bool = False,
    ) -> Optional[RecoveryEvent]:
        """Re-install a dead worker's partition onto a survivor.

        The recovery protocol of the tentpole: discard the dead endpoint
        (fencing and re-aligning the survivors via the fleet's resync
        barrier), re-install the worker's checkpointed query assignments
        onto the lowest-id survivor through the migration machinery
        (:meth:`WorkerNode.install_queries` extends registrations, so a
        query split across the dead worker and the target merges its
        postings), replay the update log entries addressed to the dead
        worker since that checkpoint, and point every routing cell the
        dead worker owned — H1 defaults, text-split term owners and H2
        posting owners alike — at the target.  Idempotent: recovering an
        already-recovered (or never-known) worker returns ``None``.
        """
        store = self._checkpoints
        if store is None:
            raise ValueError("checkpointing is disabled (checkpoint_every == 0)")
        checkpoint = store.latest()
        if checkpoint is None:
            raise ValueError("no checkpoint to recover from")
        if worker_id not in self.workers:
            return None
        self._record_lifecycle(
            "endpoint_death",
            tier="worker",
            endpoint_id=worker_id,
            detail="lost_tuples=%d" % lost_tuples,
        )
        self.transport.discard_worker(worker_id)
        survivors = sorted(self.workers)
        if not survivors:
            raise TransportError("no surviving workers to recover onto")
        target = survivors[0]
        target_worker = self.workers[target]
        assignments = list(checkpoint.assignments.get(worker_id, ()))
        reinstalled = target_worker.install_queries(assignments) if assignments else 0
        # Replay the dead worker's post-checkpoint updates in stream
        # order, re-keying them to the target (so a later recovery of the
        # *target* replays them again).
        replayed = 0
        new_log: List[Tuple[int, Any]] = []
        for owner, entry in self._update_log:
            if owner != worker_id:
                new_log.append((owner, entry))
                continue
            replayed += 1
            if isinstance(entry, QueryAssignment):
                target_worker.install_queries([entry])
            elif isinstance(entry, int):
                self.transport.exchange({target: RouteBatch((DeleteById(entry),))})
            else:
                self.transport.exchange({target: RouteBatch((entry,))})
            new_log.append((target, entry))
        self._update_log[:] = new_log
        # Routing remap: every cell that still names the dead worker —
        # as H1 default, term owner or H2 posting owner — moves to the
        # target wholesale.
        routing = self.routing_index
        cells_remapped = 0
        cells_fn = getattr(routing, "cells", None)
        migrate_bulk = getattr(routing, "migrate_cells", None)
        if cells_fn is not None and migrate_bulk is not None:
            coords = [
                coord
                for coord, cell in cells_fn().items()
                if worker_id in cell.workers()
            ]
            if coords:
                migrate_bulk(coords, worker_id, target)
                cells_remapped = len(coords)
        self.invalidate_routing_caches()
        event = RecoveryEvent(
            worker_id=worker_id,
            target_worker=target,
            epoch=checkpoint.epoch,
            queries_reinstalled=reinstalled,
            updates_replayed=replayed,
            cells_remapped=cells_remapped,
            lost_tuples=lost_tuples,
            lost_object_ids=lost_object_ids,
            lost_query_ids=lost_query_ids,
            during_adjustment=during_adjustment,
        )
        self._recovery_events.append(event)
        self._record_lifecycle(
            "recovery",
            tier="worker",
            endpoint_id=worker_id,
            epoch=checkpoint.epoch,
            detail="worker %d -> %d: %d queries reinstalled, %d updates replayed, "
            "%d cells remapped"
            % (worker_id, target, reinstalled, replayed, cells_remapped),
        )
        return event

    @barrier_context
    def run_adjustment(
        self,
        *,
        local_adjuster: Optional["LocalAdjusterLike"] = None,
        global_adjuster: Optional["GlobalAdjusterLike"] = None,
        sample: Optional[WorkloadSample] = None,
        reset_loads: bool = True,
    ) -> None:
        """One Section V adjustment round at a window barrier.

        Runs the local adjuster (``adjust(cluster)``) and/or the global
        adjuster (``adjust(cluster, sample)`` — a pending repartition is
        finalised, otherwise the period sample is checked), then starts a
        new load-measurement period so the next round observes only
        post-adjustment traffic.  The cache-invalidation contract is
        enforced by the mutators themselves: every H1 mutation the
        adjusters can perform (``migrate_cells``, ``migrate_keywords``,
        ``replace_routing_index``, a Phase I split) flushes the routing
        caches, so an untriggered round leaves the batched engine's memos
        warm.  Run-level accounting (busy time, traces, match counts) is
        *not* cleared — the RunReport of a closed-loop run covers the
        whole stream; use :meth:`reset_period` for a full reset.

        The round opens with the transport's ``AdjustBarrier`` fence:
        every worker acknowledges the new epoch before any adjuster reads
        or mutates state, so on the multiprocess backend all previously
        shipped window work is guaranteed applied on every worker process.
        Sharded dispatch shards are fenced with the same epoch message, so
        no shard is still routing when the adjusters start mutating H1;
        the mutations themselves bump the routing version and the replicas
        re-sync before the next routed window.
        """
        epoch = self.transport.barrier()
        if self._dispatch is not None:
            self._dispatch.barrier()
        # Fence the merger shards too: every result shipped before the
        # barrier (by the coordinator or directly by a worker) is
        # deduplicated before the adjusters snapshot merger state.
        self._merge.barrier()
        if self._telemetry is not None:
            # The fence is the one point where every tier is quiescent, so
            # the gauges drained here are an exact cross-tier cut.
            self._record_lifecycle("adjustment", epoch=epoch)
            self._drain_gauges(self._window_seq)
        if local_adjuster is not None:
            local_adjuster.adjust(self)
        if global_adjuster is not None:
            global_adjuster.adjust(self, sample)
        if reset_loads:
            self.reset_load_measurement()

    def process_batch(self, items: Sequence[StreamTuple], *, trace: bool = True) -> None:
        """Process one window of tuples through the batched engine.

        When the routing grid and the worker grids are aligned (the default
        deployment), updates are *deferred* within the window: an update
        only acts as a barrier for objects falling into a grid cell it
        actually touches, because both its H2 effect and its worker-side
        posting effect are confined to those cells.  Objects in untouched
        cells keep accumulating, so the bulk-matching runs stay close to
        window-sized despite the 5:1 object/update interleaving.  On other
        deployments (unaligned grids, dual routing during a global
        adjustment) every update is a strict barrier.
        """
        if self._cells_aligned and type(self.routing_index) is GridTIndex:
            if self._dispatch is not None:
                seq, base = self._submit_window(items)
                self._apply_routed_window(
                    items, base, self._dispatch.collect_window(seq), trace
                )
            else:
                self._process_batch_fast(items, trace)
            return
        pending: List = []
        object_kind = TupleKind.OBJECT
        for item in items:
            if item.kind is object_kind:
                pending.append(item.payload)
            else:
                if pending:
                    self._process_object_run(pending, trace)
                    pending = []
                self._process_update(item, trace)
        if pending:
            self._process_object_run(pending, trace)

    def _process_batch_fast(self, items: Sequence[StreamTuple], trace: bool) -> None:
        """Deferred-barrier window execution over an aligned gridt index.

        Correctness argument: an update's observable effect — H2 postings
        for routing, GI2 postings / pending deletions for matching — is
        confined to the grid cells of its routing assignments.  An object
        whose cell no pending update touches therefore sees the same state
        whether it executes before or after them, so it is executed in the
        current bulk run; an object whose cell *is* touched flushes the
        window segment first (objects, then the deferred updates in stream
        order).  Per-tuple dispatcher round-robin, costs, counters and
        traces are all assigned by original stream position.
        """
        self._span_open(len(items))
        routing = self.routing_index
        count = len(items)
        dispatchers = self.dispatchers
        num_dispatchers = len(dispatchers)
        base = self._next_dispatcher
        self._next_dispatcher = (base + count) % num_dispatchers

        grid = routing.grid
        bounds = grid.bounds
        min_x = bounds.min_x
        min_y = bounds.min_y
        cell_w = grid.cell_width
        cell_h = grid.cell_height
        max_col = grid.columns - 1
        max_row = grid.rows - 1

        trace_costs: Optional[List[float]] = [0.0] * count if trace else None
        trace_workers: Optional[List[Optional[List[Tuple[int, float]]]]] = (
            [None] * count if trace else None
        )
        dispatcher_costs = [0.0] * num_dispatchers
        dispatcher_objects = [0] * num_dispatchers
        dispatcher_discarded = [0] * num_dispatchers
        dispatcher_update_costs = [0.0] * num_dispatchers
        dispatcher_insertions = [0] * num_dispatchers
        dispatcher_deletions = [0] * num_dispatchers

        pending_positions: List[int] = []
        pending_objects: List = []
        pending_coords: List[CellCoord] = []
        pending_groups: Dict[int, List[int]] = {}
        pending_updates: List[Tuple] = []
        object_cells: Set[CellCoord] = set()
        # ``touched`` is synchronised lazily from ``pending_updates``: pure
        # update runs (e.g. the warm-up insertions) never pay for it.
        touched: Set[CellCoord] = set()
        touched_synced = 0

        insertion_cache = self._insertion_assignments
        object_kind = TupleKind.OBJECT
        insert_kind = TupleKind.INSERT
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST
        workers_map = self.workers
        cells_get = routing.cells().get
        route_cache = routing.route_cache
        if len(route_cache) > GridTIndex.ROUTE_CACHE_LIMIT:
            route_cache.clear()
        cache_min_h2 = GridTIndex.ROUTE_CACHE_MIN_H2
        filtering = routing.object_filtering
        window_objects = 0
        window_fanout = 0
        # Inline-routing profiling mirrors GridTIndex.route_object_batch:
        # plain locals accumulated unconditionally, flushed once per window
        # behind the guard (the RL007 profiling seam).
        prof_cells = 0
        prof_probes = 0
        prof_hits = 0
        prof_misses = 0
        prof_fallback = 0

        for position, item in enumerate(items):
            if item.kind is object_kind:
                obj = item.payload
                location = obj.location
                col = int((location.x - min_x) / cell_w)
                row = int((location.y - min_y) / cell_h)
                if col < 0:
                    col = 0
                elif col > max_col:
                    col = max_col
                if row < 0:
                    row = 0
                elif row > max_row:
                    row = max_row
                coord = (col, row)
                window_objects += 1
                # Routing and dispatcher accounting are fused into the
                # arrival scan: H2 was already updated by every earlier
                # update in the window, so the decision equals the
                # sequential one.  Only *matched* objects need the
                # worker-side barrier below; discarded objects never reach
                # a worker and bypass the deferral machinery entirely.
                # The decision rule below is an inlined copy of
                # GridTIndex.route_object / route_object_batch — any change
                # to the routing semantics must be mirrored in all three.
                slot = (base + position) % num_dispatchers
                terms = obj.terms
                n_terms = len(terms)
                cost = tuple_cost + probe_cost * (n_terms if n_terms > 1 else 1)
                dispatcher_costs[slot] += cost
                dispatcher_objects[slot] += 1
                if trace_costs is not None:
                    trace_costs[position] = cost
                cell = cells_get(coord)
                prof_cells += 1
                decision: Tuple[int, ...] = ()
                if cell is None:
                    prof_fallback += 1
                elif cell.term_workers is None and not filtering:
                    prof_fallback += 1
                    default = cell.default_worker
                    if default is not None:
                        decision = (default,)
                else:
                    h2 = cell.h2
                    if h2:
                        prof_probes += 1
                        use_cache = len(h2) >= cache_min_h2
                        cached_decision = None
                        if use_cache:
                            cache_key = (coord, terms)
                            entry = route_cache.get(cache_key)
                            version = cell.version
                            if entry is not None and entry[0] == version:
                                cached_decision = entry[1]
                        if cached_decision is not None:
                            prof_hits += 1
                            decision = cached_decision
                        else:
                            prof_misses += 1
                            hits = terms & h2.keys()
                            if hits:
                                workers: Set[int] = set()
                                for term in hits:
                                    workers.update(h2[term])
                                decision = tuple(sorted(workers))
                            if use_cache:
                                route_cache[cache_key] = (version, decision)
                    else:
                        prof_fallback += 1
                if not decision:
                    dispatcher_discarded[slot] += 1
                    continue
                if touched_synced < len(pending_updates):
                    touched_add = touched.add
                    for update in pending_updates[touched_synced:]:
                        for pairs in update[3].values():
                            for pair in pairs:
                                touched_add(pair[0])
                    touched_synced = len(pending_updates)
                if coord in touched:
                    if touched.isdisjoint(object_cells):
                        # No pending update touches any *pending object's*
                        # cell, so the queued updates can apply now while
                        # the object run keeps growing (every pending
                        # object is unaffected either way).
                        self._flush_fast(
                            [], [], [], {}, pending_updates, base,
                            dispatcher_update_costs,
                            dispatcher_insertions, dispatcher_deletions,
                            trace_costs, trace_workers,
                        )
                    else:
                        self._flush_fast(
                            pending_positions, pending_objects, pending_coords,
                            pending_groups, pending_updates, base,
                            dispatcher_update_costs, dispatcher_insertions,
                            dispatcher_deletions, trace_costs, trace_workers,
                        )
                        pending_positions = []
                        pending_objects = []
                        pending_coords = []
                        pending_groups = {}
                        object_cells = set()
                    pending_updates = []
                    touched = set()
                    touched_synced = 0
                local = len(pending_objects)
                pending_positions.append(position)
                pending_objects.append(obj)
                pending_coords.append(coord)
                object_cells.add(coord)
                for worker_id in decision:
                    if worker_id in workers_map:
                        window_fanout += 1
                        group = pending_groups.get(worker_id)
                        if group is None:
                            pending_groups[worker_id] = [local]
                        else:
                            group.append(local)
            else:
                payload = item.payload
                query = payload.query
                # H2 applies immediately: pending objects were already
                # routed at their arrival, and later objects must see the
                # updated H2 — exactly the sequential routing order.  Only
                # the worker-side (GI2) effect is deferred to the flush.
                if item.kind is insert_kind:
                    per_worker, cells = routing.insertion_plan_apply(query)
                    insertion_cache[query.query_id] = (per_worker, cells)
                    is_insert = True
                else:
                    cached = insertion_cache.pop(query.query_id, None)
                    if cached is not None:
                        per_worker, cells = cached
                    else:
                        triples, cells = routing.posting_assignments(query)
                        per_worker = group_triples(triples)
                    routing.apply_deletion_pairs(per_worker)
                    is_insert = False
                pending_updates.append((position, is_insert, payload, per_worker, cells))
        self._flush_fast(
            pending_positions, pending_objects, pending_coords, pending_groups,
            pending_updates, base,
            dispatcher_update_costs, dispatcher_insertions, dispatcher_deletions,
            trace_costs, trace_workers,
        )
        route_prof = routing.profile
        if route_prof is not None:
            route_prof.cells_probed += prof_cells
            route_prof.probes += prof_probes
            route_prof.cache_hits += prof_hits
            route_prof.cache_misses += prof_misses
            route_prof.fallback_routes += prof_fallback
        self._objects += window_objects
        self._tuples_processed += window_objects
        self._object_fanout_total += window_fanout
        for slot in range(num_dispatchers):
            if dispatcher_objects[slot]:
                dispatchers[slot].account_objects(
                    dispatcher_objects[slot],
                    dispatcher_discarded[slot],
                    dispatcher_costs[slot],
                )
            if dispatcher_insertions[slot] or dispatcher_deletions[slot]:
                dispatchers[slot].account_updates(
                    dispatcher_insertions[slot],
                    dispatcher_deletions[slot],
                    dispatcher_update_costs[slot],
                )
        if trace:
            assert trace_costs is not None and trace_workers is not None
            # Dispatcher ids repeat cyclically from ``base``; emit the whole
            # window's worth at C speed.
            rotated = [
                dispatchers[(base + offset) % num_dispatchers].dispatcher_id
                for offset in range(num_dispatchers)
            ]
            self._traces.extend(
                islice(cycle(rotated), count),
                trace_costs,
                trace_workers,
            )
        self._span_close()

    def _flush_fast(
        self,
        positions: List[int],
        objects: List,
        coords: List[CellCoord],
        groups: Dict[int, List[int]],
        updates: List[Tuple],
        base: int,
        dispatcher_update_costs: List[float],
        dispatcher_insertions: List[int],
        dispatcher_deletions: List[int],
        trace_costs: Optional[List[float]],
        trace_workers: Optional[List[Optional[List[Tuple[int, float]]]]],
    ) -> None:
        """Execute one deferred segment: bulk object matching, then updates.

        Objects were already routed, charged to their dispatchers and
        grouped per worker during the arrival scan; here each worker's
        segment is shipped as one ordered :class:`RouteBatch` over the
        transport — the object group first, then the deferred updates in
        stream order — and the match replies are merged deterministically.
        On the multiprocess backend all batches go out before any reply is
        read, so the workers' matching runs overlap on separate cores.
        """
        workers_map = self.workers
        num_dispatchers = len(self.dispatchers)
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST

        batch_ops: Dict[int, List] = {}
        if groups:
            for worker_id, locals_ in groups.items():
                batch_ops[worker_id] = [
                    MatchObjects(
                        [objects[local] for local in locals_],
                        [coords[local] for local in locals_],
                    )
                ]
        log = self._update_log if self._checkpoints is not None else None
        for _, is_insert, payload, per_worker, _ in updates:
            if is_insert:
                query = payload.query
                for worker_id, pairs in per_worker.items():
                    if worker_id not in workers_map:
                        continue
                    if log is not None:
                        log.append((worker_id, QueryAssignment(query, tuple(pairs), True)))
                    ops = batch_ops.get(worker_id)
                    if ops is None:
                        batch_ops[worker_id] = [InsertPairs(query, pairs)]
                    else:
                        ops.append(InsertPairs(query, pairs))
            else:
                query_id = payload.query_id
                for worker_id in per_worker:
                    if worker_id not in workers_map:
                        continue
                    if log is not None:
                        log.append((worker_id, query_id))
                    ops = batch_ops.get(worker_id)
                    if ops is None:
                        batch_ops[worker_id] = [DeleteById(query_id)]
                    else:
                        ops.append(DeleteById(query_id))
        replies: Dict[int, List[Optional[MatchResults]]]
        if batch_ops:
            batches = {
                worker_id: RouteBatch(ops) for worker_id, ops in batch_ops.items()
            }
            span = self._span_state
            if span is not None and self._telemetry is not None:
                started_ms = self._telemetry.now_ms()
                replies = self.transport.exchange(batches)
                if span.match_started_ms < 0:
                    span.match_started_ms = started_ms
                span.match_ms += self._telemetry.now_ms() - started_ms
                if len(batch_ops) > span.match_endpoints:
                    span.match_endpoints = len(batch_ops)
            else:
                replies = self.transport.exchange(batches)
        else:
            replies = {}

        if groups:
            all_results: List[MatchResult] = []
            produced = 0
            for worker_id, locals_ in groups.items():
                reply = replies[worker_id][0]
                assert reply is not None
                if reply.results:
                    all_results.extend(reply.results)
                produced += reply.produced_count
                if trace_workers is not None:
                    for local, cost in zip(locals_, reply.costs):
                        position = positions[local]
                        entry = trace_workers[position]
                        if entry is None:
                            trace_workers[position] = [(worker_id, cost)]
                        else:
                            entry.append((worker_id, cost))
            if all_results or produced:
                self._deliver_results(all_results, produced)

        # Coordinator-side accounting of the deferred updates.  Their
        # worker-side effect (GI2 postings, load counters, busy time) was
        # applied above through the exchange; the per-tuple costs are the
        # fixed Definition-1 constants, so traces need no round trip.
        cost_model = self.config.cost_model
        insert_cost = cost_model.insert_handling
        delete_cost = cost_model.delete_handling
        for position, is_insert, payload, per_worker, cells in updates:
            slot = (base + position) % num_dispatchers
            cost = tuple_cost + probe_cost * (cells if cells > 1 else 1)
            dispatcher_update_costs[slot] += cost
            worker_items: Optional[List[Tuple[int, float]]] = (
                [] if trace_workers is not None else None
            )
            handled = 0
            if is_insert:
                dispatcher_insertions[slot] += 1
                for worker_id in per_worker:
                    if worker_id not in workers_map:
                        continue
                    handled += 1
                    if worker_items is not None:
                        worker_items.append((worker_id, insert_cost))
                self._insertions += 1
                self._query_fanout_total += handled
            else:
                dispatcher_deletions[slot] += 1
                for worker_id in per_worker:
                    if worker_id not in workers_map:
                        continue
                    if worker_items is not None:
                        worker_items.append((worker_id, delete_cost))
                self._deletions += 1
            self._tuples_processed += 1
            if trace_costs is not None:
                trace_costs[position] = cost
                assert trace_workers is not None
                trace_workers[position] = worker_items

    def _apply_routed_window(
        self,
        items: Sequence[StreamTuple],
        base: int,
        routed: RoutedWindow,
        trace: bool,
    ) -> None:
        """Consume one window the dispatch shards routed (sharded engine).

        The deferred-barrier twin of :meth:`_process_batch_fast`: this
        scan replays exactly the same segmentation, flush schedule,
        dispatcher accounting and traces, but consumes the position-tagged
        decisions and update plans of a merged
        :class:`~repro.runtime.dispatch.RoutedWindow` instead of probing
        the routing index — the routing work already happened on the
        shards.  Any change to the segmentation rules must be mirrored in
        both methods.  Update plans are also applied to the coordinator's
        authoritative index here (pure H2 increments, no H1 probing), so
        adjusters and migrations keep observing exact routing state.
        """
        self._span_open(len(items))
        routing = self.routing_index
        count = len(items)
        dispatchers = self.dispatchers
        num_dispatchers = len(dispatchers)

        grid = routing.grid
        bounds = grid.bounds
        min_x = bounds.min_x
        min_y = bounds.min_y
        cell_w = grid.cell_width
        cell_h = grid.cell_height
        max_col = grid.columns - 1
        max_row = grid.rows - 1

        trace_costs: Optional[List[float]] = [0.0] * count if trace else None
        trace_workers: Optional[List[Optional[List[Tuple[int, float]]]]] = (
            [None] * count if trace else None
        )
        dispatcher_costs = [0.0] * num_dispatchers
        dispatcher_objects = [0] * num_dispatchers
        dispatcher_discarded = [0] * num_dispatchers
        dispatcher_update_costs = [0.0] * num_dispatchers
        dispatcher_insertions = [0] * num_dispatchers
        dispatcher_deletions = [0] * num_dispatchers

        pending_positions: List[int] = []
        pending_objects: List = []
        pending_coords: List[CellCoord] = []
        pending_groups: Dict[int, List[int]] = {}
        pending_updates: List[Tuple] = []
        object_cells: Set[CellCoord] = set()
        touched: Set[CellCoord] = set()
        touched_synced = 0

        decisions = routed.decisions
        plans = routed.plans
        object_kind = TupleKind.OBJECT
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST
        workers_map = self.workers
        apply_insertion = routing.apply_insertion
        apply_deletion_pairs = routing.apply_deletion_pairs
        window_objects = 0
        window_fanout = 0

        for position, item in enumerate(items):
            if item.kind is object_kind:
                obj = item.payload
                window_objects += 1
                slot = (base + position) % num_dispatchers
                n_terms = len(obj.terms)
                cost = tuple_cost + probe_cost * (n_terms if n_terms > 1 else 1)
                dispatcher_costs[slot] += cost
                dispatcher_objects[slot] += 1
                if trace_costs is not None:
                    trace_costs[position] = cost
                decision = decisions[position]
                if not decision:
                    dispatcher_discarded[slot] += 1
                    continue
                location = obj.location
                col = int((location.x - min_x) / cell_w)
                row = int((location.y - min_y) / cell_h)
                if col < 0:
                    col = 0
                elif col > max_col:
                    col = max_col
                if row < 0:
                    row = 0
                elif row > max_row:
                    row = max_row
                coord = (col, row)
                if touched_synced < len(pending_updates):
                    touched_add = touched.add
                    for update in pending_updates[touched_synced:]:
                        for pairs in update[3].values():
                            for pair in pairs:
                                touched_add(pair[0])
                    touched_synced = len(pending_updates)
                if coord in touched:
                    if touched.isdisjoint(object_cells):
                        self._flush_fast(
                            [], [], [], {}, pending_updates, base,
                            dispatcher_update_costs,
                            dispatcher_insertions, dispatcher_deletions,
                            trace_costs, trace_workers,
                        )
                    else:
                        self._flush_fast(
                            pending_positions, pending_objects, pending_coords,
                            pending_groups, pending_updates, base,
                            dispatcher_update_costs, dispatcher_insertions,
                            dispatcher_deletions, trace_costs, trace_workers,
                        )
                        pending_positions = []
                        pending_objects = []
                        pending_coords = []
                        pending_groups = {}
                        object_cells = set()
                    pending_updates = []
                    touched = set()
                    touched_synced = 0
                local = len(pending_objects)
                pending_positions.append(position)
                pending_objects.append(obj)
                pending_coords.append(coord)
                object_cells.add(coord)
                for worker_id in decision:
                    if worker_id in workers_map:
                        window_fanout += 1
                        group = pending_groups.get(worker_id)
                        if group is None:
                            pending_groups[worker_id] = [local]
                        else:
                            group.append(local)
            else:
                is_insert, per_worker, cells = plans[position]
                # The shard already routed the update; replay the H2 delta
                # on the authoritative index (increments only, no probes).
                if is_insert:
                    apply_insertion(
                        (coord, key, worker)
                        for worker, pairs in per_worker.items()
                        for coord, key in pairs
                    )
                else:
                    apply_deletion_pairs(per_worker)
                pending_updates.append(
                    (position, is_insert, item.payload, per_worker, cells)
                )
        self._flush_fast(
            pending_positions, pending_objects, pending_coords, pending_groups,
            pending_updates, base,
            dispatcher_update_costs, dispatcher_insertions, dispatcher_deletions,
            trace_costs, trace_workers,
        )
        self._objects += window_objects
        self._tuples_processed += window_objects
        self._object_fanout_total += window_fanout
        for slot in range(num_dispatchers):
            if dispatcher_objects[slot]:
                dispatchers[slot].account_objects(
                    dispatcher_objects[slot],
                    dispatcher_discarded[slot],
                    dispatcher_costs[slot],
                )
            if dispatcher_insertions[slot] or dispatcher_deletions[slot]:
                dispatchers[slot].account_updates(
                    dispatcher_insertions[slot],
                    dispatcher_deletions[slot],
                    dispatcher_update_costs[slot],
                )
        if trace:
            assert trace_costs is not None and trace_workers is not None
            rotated = [
                dispatchers[(base + offset) % num_dispatchers].dispatcher_id
                for offset in range(num_dispatchers)
            ]
            self._traces.extend(
                islice(cycle(rotated), count),
                trace_costs,
                trace_workers,
            )
        self._span_close()

    def _process_object_run(self, objects: Sequence, trace: bool) -> None:
        """Route, match and merge a run of consecutive objects in bulk."""
        routing = self.routing_index
        route_batch = getattr(routing, "route_object_batch", None)
        if route_batch is not None:
            decisions = route_batch(objects)
        else:
            decisions = [tuple(sorted(routing.route_object(obj))) for obj in objects]

        dispatchers = self.dispatchers
        num_dispatchers = len(dispatchers)
        start = self._next_dispatcher
        count = len(objects)
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST
        dispatcher_costs = [0.0] * num_dispatchers
        dispatcher_routed = [0] * num_dispatchers
        dispatcher_discarded = [0] * num_dispatchers
        object_costs: List[float] = []

        workers_map = self.workers
        groups: Dict[int, List[int]] = {}
        valid_decisions: List[Tuple[int, ...]] = []
        for position, (obj, decision) in enumerate(zip(objects, decisions)):
            slot = (start + position) % num_dispatchers
            terms = len(obj.terms)
            cost = tuple_cost + probe_cost * (terms if terms > 1 else 1)
            dispatcher_costs[slot] += cost
            dispatcher_routed[slot] += 1
            object_costs.append(cost)
            if not decision:
                dispatcher_discarded[slot] += 1
                valid_decisions.append(())
                continue
            valid: List[int] = []
            for worker_id in decision:
                if worker_id in workers_map:
                    valid.append(worker_id)
                    group = groups.get(worker_id)
                    if group is None:
                        groups[worker_id] = [position]
                    else:
                        group.append(position)
            valid_decisions.append(tuple(valid))
        self._next_dispatcher = (start + count) % num_dispatchers
        for slot in range(num_dispatchers):
            if dispatcher_routed[slot]:
                dispatchers[slot].account_objects(
                    dispatcher_routed[slot], dispatcher_discarded[slot], dispatcher_costs[slot]
                )

        # Per-object worker costs, gathered from the per-worker group runs
        # (one MatchObjects batch per worker, shipped over the transport).
        worker_cost_lists: List[List[Tuple[int, float]]] = [[] for _ in range(count)]
        all_results: List[MatchResult] = []
        produced = 0
        replies = self.transport.exchange(
            {
                worker_id: RouteBatch(
                    (MatchObjects([objects[p] for p in positions]),)
                )
                for worker_id, positions in groups.items()
            }
        )
        for worker_id, positions in groups.items():
            reply = replies[worker_id][0]
            assert reply is not None
            all_results.extend(reply.results)
            produced += reply.produced_count
            for position, cost in zip(positions, reply.costs):
                worker_cost_lists[position].append((worker_id, cost))

        if all_results or produced:
            self._deliver_results(all_results, produced)

        self._tuples_processed += count
        self._objects += count
        self._object_fanout_total += sum(len(decision) for decision in valid_decisions)
        if trace:
            traces = self._traces
            for position in range(count):
                traces.append(
                    dispatchers[(start + position) % num_dispatchers].dispatcher_id,
                    object_costs[position],
                    worker_cost_lists[position],
                )

    def _process_update(self, item: StreamTuple, trace: bool) -> None:
        """Apply one insertion/deletion at its stream position (batched path).

        Mirrors :meth:`process` for update tuples but reuses the cluster's
        H1 memo and remembers insertion assignments so the matching
        deletion routes without re-probing the grid.
        """
        dispatcher = self.dispatchers[self._next_dispatcher]
        self._next_dispatcher = (self._next_dispatcher + 1) % len(self.dispatchers)
        routing = self.routing_index
        assignments_fn = getattr(routing, "posting_assignments", None)
        if assignments_fn is None:
            # Routing structures without the detailed surface: fall back to
            # the reference per-tuple path for this update.
            self._next_dispatcher = (
                self._next_dispatcher - 1 + len(self.dispatchers)
            ) % len(self.dispatchers)
            self.process(item, trace=trace)
            return

        query = item.payload.query  # type: ignore[union-attr]
        tuple_cost = DispatcherNode.TUPLE_COST
        probe_cost = DispatcherNode.PROBE_COST
        if item.kind is TupleKind.INSERT:
            triples, cells = assignments_fn(query, self._h1_memo)
            routing.apply_insertion(triples)
            per_worker = group_triples(triples)
            self._insertion_assignments[query.query_id] = (per_worker, cells)
        else:
            cached = self._insertion_assignments.pop(query.query_id, None)
            if cached is not None:
                per_worker, cells = cached
            else:
                triples, cells = assignments_fn(query, self._h1_memo)
                per_worker = group_triples(triples)
            routing.apply_deletion_pairs(per_worker)
        # Inline update while shard replicas exist (sharded dispatch falls
        # back inline on unaligned deployments): mark the replicas stale.
        self._mark_routing_mutated()
        cost = tuple_cost + probe_cost * (cells if cells > 1 else 1)

        workers_map = self.workers
        worker_costs: List[Tuple[int, float]] = []
        handled = 0
        cells_aligned = self._cells_aligned
        cost_model = self.config.cost_model
        log = self._update_log if self._checkpoints is not None else None
        if item.kind is TupleKind.INSERT:
            dispatcher.account_insertion(cost)
            self.transport.exchange(
                {
                    worker_id: RouteBatch(
                        (InsertQuery(item.payload, per_worker[worker_id], cells_aligned),)
                    )
                    for worker_id in sorted(per_worker)
                    if worker_id in workers_map
                }
            )
            for worker_id in sorted(per_worker):
                if worker_id not in workers_map:
                    continue
                if log is not None:
                    log.append(
                        (worker_id, QueryAssignment(query, tuple(per_worker[worker_id]), True))
                    )
                handled += 1
                worker_costs.append((worker_id, cost_model.insert_handling))
            self._insertions += 1
            self._query_fanout_total += handled
        else:
            dispatcher.account_deletion(cost)
            self.transport.exchange(
                {
                    worker_id: RouteBatch((DeleteQuery(item.payload),))
                    for worker_id in sorted(per_worker)
                    if worker_id in workers_map
                }
            )
            for worker_id in sorted(per_worker):
                if worker_id not in workers_map:
                    continue
                if log is not None:
                    log.append((worker_id, query.query_id))
                worker_costs.append((worker_id, cost_model.delete_handling))
            self._deletions += 1
        self._tuples_processed += 1
        if trace:
            self._traces.append(dispatcher.dispatcher_id, cost, worker_costs)

    # ------------------------------------------------------------------
    # Merger tier (delivery, dedup accounting, subscriber sinks)
    # ------------------------------------------------------------------
    def _deliver_results(self, results: List[MatchResult], produced: int) -> None:
        """Coordinator-side half of result delivery.

        ``produced`` counts every match the workers produced this
        exchange; ``results`` holds only the ones that came back to the
        coordinator (empty in the full multiprocess deployment, where
        workers ship them straight to the merger shards).  Relayed
        results count against :attr:`result_hops` — the coordinator-hop
        counter the direct-shipping tests pin to zero.
        """
        self._matches_produced += produced
        if results:
            self._result_hops += len(results)
            span = self._span_state
            if span is not None and self._telemetry is not None:
                started_ms = self._telemetry.now_ms()
                self._merge.deliver(results)
                if span.merge_started_ms < 0:
                    span.merge_started_ms = started_ms
                span.merge_ms += self._telemetry.now_ms() - started_ms
            else:
                self._merge.deliver(results)

    # ------------------------------------------------------------------
    # Runtime telemetry (window spans, gauge drains, lifecycle events)
    # ------------------------------------------------------------------
    def _span_open(self, size: int) -> None:
        """Start tracing one batched window (no-op when telemetry is off)."""
        hub = self._telemetry
        if hub is None:
            return
        self._window_seq += 1
        self._span_state = _SpanState(
            self._window_seq, self._tuples_processed, size, hub.now_ms()
        )

    def _span_close(self) -> None:
        """Record the in-flight window's span and drain per-tier gauges.

        The route hop is the window's residual wall time after the
        measured match and merge hops: inline routing interleaves with
        the arrival scan and sharded routing overlaps the previous
        window's matching, so the residual is the honest attribution on
        both engines.
        """
        hub = self._telemetry
        state = self._span_state
        if hub is None or state is None:
            return
        self._span_state = None
        closed_ms = hub.now_ms()
        total_ms = closed_ms - state.opened_ms
        route_ms = max(0.0, total_ms - state.match_ms - state.merge_ms)
        hops = (
            SpanHop("route", "dispatcher", state.opened_ms, route_ms, len(self.dispatchers)),
            SpanHop(
                "match",
                "worker",
                state.match_started_ms if state.match_started_ms >= 0 else closed_ms,
                state.match_ms,
                state.match_endpoints,
            ),
            SpanHop(
                "merge",
                "merger",
                state.merge_started_ms if state.merge_started_ms >= 0 else closed_ms,
                state.merge_ms,
                self._merge.num_mergers,
            ),
        )
        hub.record(WindowSpan(state.seq, state.base, state.size, hops))
        if state.seq % max(1, hub.spec.sample_every) == 0:
            self._drain_gauges(state.seq)

    def _drain_gauges(self, seq: int) -> None:
        """Pull one gauge sample per endpoint of every tier into the hub.

        Worker and merger gauges come from their backends (role hosts
        answer a ``TelemetryDrain``; the in-process backends synthesise
        identical samples locally).  Dispatcher gauges overlay the
        coordinator's authoritative Definition-1 busy accounting on the
        shard replicas' memory/cache-depth samples, and the coordinator
        itself contributes a sample (its relayed-result depth).  Purely
        read-only — a drained run's report is byte-identical to an
        undrained one.
        """
        hub = self._telemetry
        if hub is None:
            return
        samples: List[GaugeSample] = list(self.transport.drain_telemetry())
        shard_samples: Dict[int, GaugeSample] = {}
        if self._dispatch is not None:
            shard_samples = {
                sample.endpoint_id: sample
                for sample in self._dispatch.drain_telemetry()
            }
        for dispatcher in self.dispatchers:
            shard = shard_samples.get(dispatcher.dispatcher_id)
            samples.append(
                GaugeSample(
                    tier="dispatcher",
                    endpoint_id=dispatcher.dispatcher_id,
                    busy_cost=dispatcher.busy_cost,
                    memory_bytes=shard.memory_bytes if shard is not None else 0,
                    depth=shard.depth if shard is not None else 0,
                )
            )
        samples.extend(self._merge.drain_telemetry())
        samples.append(
            GaugeSample(
                tier="coordinator",
                endpoint_id=0,
                busy_cost=0.0,
                memory_bytes=0,
                depth=self._result_hops,
            )
        )
        hub.record_gauges(samples, seq)

    def _record_lifecycle(
        self,
        kind: str,
        *,
        epoch: int = -1,
        tier: str = "",
        endpoint_id: int = -1,
        detail: str = "",
    ) -> None:
        hub = self._telemetry
        if hub is None:
            return
        hub.record(
            LifecycleEvent(
                kind=kind,
                seq=self._window_seq,
                at_ms=hub.now_ms(),
                detail=detail,
                epoch=epoch,
                tier=tier,
                endpoint_id=endpoint_id,
            )
        )

    def telemetry_events(self) -> List[TelemetryEvent]:
        """The telemetry ring's retained events (empty when disabled)."""
        return self._telemetry.events() if self._telemetry is not None else []

    def telemetry_timeseries(self) -> Optional[TierTimeseries]:
        """The per-window gauge store, queryable at the adjustment fence."""
        return self._telemetry.timeseries if self._telemetry is not None else None

    def telemetry_text(self) -> str:
        """Prometheus-style text snapshot of the telemetry state."""
        if self._telemetry is None:
            return "# telemetry disabled (ClusterConfig.telemetry is None)\n"
        return self._telemetry.telemetry_text()

    @property
    def result_hops(self) -> int:
        """Match results that reached the merger tier via the coordinator."""
        return self._result_hops

    @property
    def mergers(self) -> List:
        """Per-shard merger handles.

        Real :class:`MergerNode` objects under the in-process backend;
        fresh :class:`~repro.runtime.transport.MergerStats` snapshots
        (``delivered`` / ``duplicates`` / ``busy_cost``) under the
        multiprocess backend.
        """
        return self._merge.merger_handles()

    def merger_stats(self) -> Dict[int, MergerStats]:
        """One :class:`MergerStats` per merger shard, sorted by merger id.

        On the multiprocess backend the request rides the shard inboxes,
        so it observes every delivery enqueued before it — reading stats
        after an ``exchange`` returned is always consistent.
        """
        return self._merge.merger_stats()

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        """Drain every merger shard's sink buffer (memory sinks)."""
        return self._merge.drain_sinks()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def worker_stats(self) -> Dict[int, StatsReport]:
        """One :class:`StatsReport` per worker, fetched over the transport."""
        return self.transport.worker_stats()

    def saturation_throughput(
        self,
        *,
        _stats: Optional[Dict[int, StatsReport]] = None,
        _merger_stats: Optional[Dict[int, MergerStats]] = None,
    ) -> float:
        """Tuples per second when the bottleneck process is saturated."""
        if self._tuples_processed == 0:
            return 0.0
        stats = _stats if _stats is not None else self.transport.worker_stats()
        merger_stats = (
            _merger_stats if _merger_stats is not None else self._merge.merger_stats()
        )
        unit = self.config.cost_unit_seconds
        busy_seconds = [d.busy_cost * unit for d in self.dispatchers]
        busy_seconds += [s.busy_cost * unit for s in stats.values()]
        busy_seconds += [m.busy_cost * unit for m in merger_stats.values()]
        bottleneck = max(busy_seconds) if busy_seconds else 0.0
        if bottleneck <= 0.0:
            return 0.0
        return self._tuples_processed / bottleneck

    def _process_utilizations(
        self, input_rate: float, stats: Dict[int, StatsReport]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Utilisation of each dispatcher and worker at ``input_rate`` tuples/s."""
        if self._tuples_processed == 0 or input_rate <= 0.0:
            return {}, {}
        unit = self.config.cost_unit_seconds
        wall_seconds = self._tuples_processed / input_rate
        dispatcher_util = {
            d.dispatcher_id: (d.busy_cost * unit) / wall_seconds for d in self.dispatchers
        }
        worker_util = {
            worker_id: (s.busy_cost * unit) / wall_seconds for worker_id, s in stats.items()
        }
        return dispatcher_util, worker_util

    def latency_tracker(
        self,
        input_rate: Optional[float] = None,
        *,
        _stats: Optional[Dict[int, StatsReport]] = None,
        _merger_stats: Optional[Dict[int, MergerStats]] = None,
    ) -> LatencyTracker:
        """Per-tuple latencies (ms) at the given input rate.

        Defaults to ``latency_load_fraction`` of the saturation throughput,
        matching the paper's "moderate input speed" protocol for Figure 8.
        """
        tracker = LatencyTracker()
        traces = self._traces
        count = len(traces)
        if count == 0:
            return tracker
        stats = _stats if _stats is not None else self.transport.worker_stats()
        if input_rate is None:
            input_rate = self.config.latency_load_fraction * self.saturation_throughput(
                _stats=stats, _merger_stats=_merger_stats
            )
        dispatcher_util, worker_util = self._process_utilizations(input_rate, stats)
        unit_ms = self.config.cost_unit_seconds * 1000.0
        hop_ms = self.config.network_hop_ms
        dispatcher_ids = traces.dispatcher_ids
        dispatcher_costs = traces.dispatcher_costs
        offsets = traces.worker_offsets
        worker_ids = traces.worker_ids
        worker_costs = traces.worker_costs
        dispatcher_util_get = dispatcher_util.get
        worker_util_get = worker_util.get
        record = tracker.record
        for index in range(count):
            dispatcher_ms = utilization_latency(
                hop_ms + dispatcher_costs[index] * unit_ms,
                dispatcher_util_get(dispatcher_ids[index], 0.0),
            )
            worker_ms = 0.0
            for slot in range(offsets[index], offsets[index + 1]):
                candidate = utilization_latency(
                    hop_ms + worker_costs[slot] * unit_ms,
                    worker_util_get(worker_ids[slot], 0.0),
                )
                if candidate > worker_ms:
                    worker_ms = candidate
            record(dispatcher_ms + worker_ms)
        return tracker

    def worker_load_report(self) -> LoadReport:
        return LoadReport(
            worker_loads={
                worker_id: s.load for worker_id, s in self.transport.worker_stats().items()
            }
        )

    def dispatcher_memory_report(self) -> Dict[int, int]:
        """Routing-structure bytes per dispatcher (Figure 9).

        Inline dispatch charges the analytic estimate of the coordinator's
        index once per simulated dispatcher, as the paper does.  Sharded
        dispatch *measures* each shard's replica where it lives (after a
        re-sync if the routing version moved) — byte-identical values when
        the replicas are in sync, which ``tests/test_dispatch.py`` pins.
        """
        if self._dispatch is not None:
            self._ensure_dispatch_synced()
            memory = self._dispatch.shard_memory()
            return {shard: memory[shard] for shard in sorted(memory)}
        # Every inline dispatcher references the same routing index, so
        # the O(cells x postings) estimate is computed once and fanned out.
        estimate = self.routing_index.memory_bytes()
        return {d.dispatcher_id: estimate for d in self.dispatchers}

    def _delivery_latency(
        self, input_rate: float, merger_stats: Dict[int, MergerStats]
    ) -> Tuple[float, LatencyBuckets]:
        """End-to-end notification latency of the delivered results.

        Models the merger hop the same way tuple latency models the
        dispatcher/worker hops: each delivery pays the network hop plus
        the Definition-1 ``RESULT_COST`` service time, inflated by its
        merger's utilisation at ``input_rate``.  Every quantity derives
        from the per-merger stats (merged sorted by merger id), so the
        numbers are identical whichever backend hosts the shards.
        """
        delivered_total = sum(s.delivered for s in merger_stats.values())
        if delivered_total == 0 or self._tuples_processed == 0 or input_rate <= 0.0:
            return 0.0, LatencyBuckets(1.0, 0.0, 0.0)
        unit = self.config.cost_unit_seconds
        wall_seconds = self._tuples_processed / input_rate
        service_ms = self.config.network_hop_ms + MergerNode.RESULT_COST * unit * 1000.0
        weighted = 0.0
        under = 0
        over = 0
        for merger_id in sorted(merger_stats):
            stat = merger_stats[merger_id]
            if stat.delivered == 0:
                continue
            latency = utilization_latency(
                service_ms, (stat.busy_cost * unit) / wall_seconds
            )
            weighted += latency * stat.delivered
            if latency < 100.0:
                under += stat.delivered
            elif latency > 1000.0:
                over += stat.delivered
        middle = delivered_total - under - over
        return weighted / delivered_total, LatencyBuckets(
            under / delivered_total, middle / delivered_total, over / delivered_total
        )

    def report(self, input_rate: Optional[float] = None) -> RunReport:
        """Build the full :class:`RunReport` for the processed stream.

        Worker-side numbers (loads, busy time, memory) arrive as one
        :class:`StatsReport` per worker over the transport, merger-side
        numbers as one :class:`MergerStats` per shard over the merge
        backend — each fetched once per report whichever backend hosts
        the tier.
        """
        if self._telemetry is not None:
            # Final cross-tier gauge cut so a run's last partial sampling
            # interval is still visible in the timeseries and the JSONL.
            self._drain_gauges(self._window_seq)
        stats = self.transport.worker_stats()
        merger_stats = self._merge.merger_stats()
        if input_rate is None:
            rate = self.config.latency_load_fraction * self.saturation_throughput(
                _stats=stats, _merger_stats=merger_stats
            )
        else:
            rate = input_rate
        tracker = self.latency_tracker(rate, _stats=stats, _merger_stats=merger_stats)
        buckets = tracker.buckets()
        delivery_mean, delivery_buckets = self._delivery_latency(rate, merger_stats)
        objects = max(self._objects, 1)
        insertions = max(self._insertions, 1)
        return RunReport(
            tuples_processed=self._tuples_processed,
            objects_processed=self._objects,
            insertions_processed=self._insertions,
            deletions_processed=self._deletions,
            throughput=self.saturation_throughput(_stats=stats, _merger_stats=merger_stats),
            mean_latency_ms=tracker.mean,
            p95_latency_ms=tracker.percentile(95.0),
            latency_buckets=buckets,
            worker_loads={worker_id: s.load for worker_id, s in stats.items()},
            dispatcher_memory=self.dispatcher_memory_report(),
            worker_memory={worker_id: s.memory_bytes for worker_id, s in stats.items()},
            matches_produced=self._matches_produced,
            matches_delivered=sum(s.delivered for s in merger_stats.values()),
            object_fanout=self._object_fanout_total / objects,
            query_fanout=self._query_fanout_total / insertions,
            merger_busy={m: s.busy_cost for m, s in merger_stats.items()},
            merger_delivered={m: s.delivered for m, s in merger_stats.items()},
            merger_duplicates={m: s.duplicates for m, s in merger_stats.items()},
            delivery_mean_latency_ms=delivery_mean,
            delivery_latency_buckets=delivery_buckets,
            recovery=(
                RecoveryReport(
                    checkpoints_taken=self._checkpoints.checkpoints_taken,
                    events=tuple(self._recovery_events),
                )
                if self._checkpoints is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Hot-loop profiling (repro profile)
    # ------------------------------------------------------------------
    def profile_report(self) -> Optional[ProfileReport]:
        """Drain every tier's hot-loop counters; ``None`` when profiling is off.

        One :class:`~repro.runtime.profiling.MatchProfile` per worker over
        the transport, one :class:`~repro.runtime.profiling.RouteProfile`
        per routing replica — the coordinator's inline counters first
        (endpoint ``-1``), then the dispatch shards — and one
        :class:`~repro.runtime.profiling.DedupProfile` per merger shard
        over the merge backend.  Draining is read-only, so it can run
        any number of times (e.g. before and after an adjustment round)
        without perturbing a report.
        """
        profiling = self.config.profiling
        if profiling is None or not profiling.enabled:
            return None
        routers = []
        inline = getattr(self.routing_index, "profile", None)
        if inline is not None:
            routers.append(inline.event(-1))
        if self._dispatch is not None:
            routers.extend(self._dispatch.drain_profile())
        return ProfileReport(
            matchers=tuple(self.transport.drain_profile()),
            routers=tuple(routers),
            mergers=tuple(self._merge.drain_profile()),
        )

    def profile_stacks(self) -> Optional[List[str]]:
        """The stack sampler's collapsed stacks; ``None`` without ``sample``."""
        if self._sampler is None:
            return None
        self._sampler.stop()
        return self._sampler.collapsed()

    # ------------------------------------------------------------------
    # Dynamic adjustment hooks (Section V)
    # ------------------------------------------------------------------
    def worker_cell_stats(self, worker_id: int) -> List[CellStats]:
        return self.workers[worker_id].cell_stats()

    def migration_seconds(self, bytes_moved: int, queries_shipped: int) -> float:
        """Simulated wall-clock cost of one migration (Section V)."""
        return (
            self.config.migration_fixed_seconds
            + bytes_moved / self.config.migration_bandwidth_bytes_per_sec
            + queries_shipped
            * self.config.cost_model.insert_handling
            * self.config.cost_unit_seconds
        )

    def _record_migration(
        self,
        source_worker: int,
        target_worker: int,
        cells: Tuple[CellCoord, ...],
        shipped: List[QueryAssignment],
    ) -> MigrationRecord:
        """Account one shipment of query assignments as a migration."""
        moved = sum(1 for assignment in shipped if assignment.moved)
        bytes_moved = sum(assignment.query.size_bytes() for assignment in shipped)
        record = MigrationRecord(
            source_worker=source_worker,
            target_worker=target_worker,
            cells=cells,
            queries_moved=moved,
            bytes_moved=bytes_moved,
            seconds=self.migration_seconds(bytes_moved, len(shipped)),
            queries_copied=len(shipped) - moved,
        )
        self.migrations.append(record)
        return record

    @mutates_routing
    def migrate_cells(
        self,
        source_worker: int,
        target_worker: int,
        cells: Sequence[CellCoord],
    ) -> MigrationRecord:
        """Move the query assignments of ``cells`` from one worker to another.

        For every live query registered in the migrated cells, exactly the
        ``(cell, posting keyword)`` pairs it owns there are extracted from
        the source and re-registered on the target — the same
        posting-plan mechanism the dispatcher uses at insertion time, so
        worker memory stays flat across adjustment rounds.  Queries whose
        postings lived entirely in the migrated cells leave the source
        (*moved*); queries that also overlap cells staying behind keep
        their remaining pairs on the source (*copied*).  The dispatcher
        routing index is updated to point the migrated cells at the target
        worker, and the batched engine's routing caches are invalidated.
        """
        source = self.workers[source_worker]
        target = self.workers[target_worker]
        moving = set(cells)
        # Only live queries ship: drop lazily deleted postings from the
        # handed-over cells first (targeted, not a full compact).
        source.index.purge_cells(moving)
        shipped = source.extract_cells(moving)
        target.install_queries(shipped)
        migrate_bulk = getattr(self.routing_index, "migrate_cells", None)
        if migrate_bulk is not None:
            migrate_bulk(moving, source_worker, target_worker)
        else:
            for cell in moving:
                self.routing_index.migrate_cell(cell, source_worker, target_worker)
        self.invalidate_routing_caches()
        return self._record_migration(
            source_worker, target_worker, tuple(moving), shipped
        )

    @mutates_routing
    def migrate_keywords(
        self,
        source_worker: int,
        target_worker: int,
        cell: CellCoord,
        keywords: Iterable[str],
    ) -> Optional[MigrationRecord]:
        """Ship one cell's postings for ``keywords`` to the target worker.

        The worker-side half of a Phase I text split
        (:meth:`GridTIndex.split_cell_by_text` is the routing half, applied
        by the caller): every live query posted in ``cell`` under one of
        the reassigned keywords hands exactly those ``(cell, keyword)``
        pairs to the target.  Returns the migration record, or ``None``
        when no posting matched (the split moved no resident queries).
        """
        source = self.workers[source_worker]
        target = self.workers[target_worker]
        source.index.purge_cells((cell,))
        shipped = source.extract_keywords(cell, set(keywords))
        self.invalidate_routing_caches()
        if not shipped:
            return None
        target.install_queries(shipped)
        return self._record_migration(source_worker, target_worker, (cell,), shipped)

    @mutates_routing
    def replace_routing_index(self, routing_index: GridTIndex) -> None:
        """Swap in a new routing structure (global load adjustment)."""
        # The inline-routing profile survives the swap: re-attach the old
        # index's counters so a run's profile covers the whole stream.
        old_profile = getattr(self.routing_index, "profile", None)
        self.routing_index = routing_index
        if old_profile is not None:
            routing_index.profile = old_profile
        for dispatcher in self.dispatchers:
            dispatcher.routing_index = routing_index
        self.invalidate_routing_caches()
        self._cells_aligned = self._compute_cells_aligned()

    def reset_load_measurement(self) -> None:
        """Start a new Section V measurement period, keeping run totals.

        Resets exactly what the adjusters observe — the Definition-1
        worker load counters and the Definition-3 per-cell object counts —
        while busy time, traces, match counts and merger state keep
        accumulating, so a closed-loop run's report still covers the whole
        stream.
        """
        for worker in self.workers.values():
            worker.reset_load_measurement()

    def close(self) -> None:
        """Release every backend (terminates out-of-process endpoints).

        Idempotent; a no-op for the in-process backends.  Out-of-process
        clusters should be closed (or used as a context manager) once the
        run and its reports are done — worker state is unreachable after.
        Releases the dispatch shards (if any) and the merger tier
        alongside the worker fleet — workers first, so no producer still
        holds a shard inbox when the mergers shut down.  Each tier is
        closed even if an earlier tier's close raises (a dead worker
        fleet must not leak dispatcher/merger processes; the first error
        is re-raised once all three are down), and the fabric's shutdown
        waits are poll-bounded, so closing mid-window — even with a
        failed exchange outstanding — cannot hang on a pipe/queue drain.
        """
        if self._closed:
            return
        self._closed = True
        if self._sampler is not None:
            self._sampler.stop()
        first_error: Optional[BaseException] = None
        closers = [self.transport.close]
        if self._dispatch is not None:
            closers.append(self._dispatch.close)
        closers.append(self._merge.close)
        if self._telemetry is not None:
            # Last: flushes the JSONL sink after every tier stopped emitting.
            closers.append(self._telemetry.close)
        for closer in closers:
            try:
                closer()
            except BaseException as exc:  # noqa: BLE001 - close all tiers first
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def reset_period(self) -> None:
        """Start a new measurement period on every process."""
        for dispatcher in self.dispatchers:
            dispatcher.reset_period()
        for worker in self.workers.values():
            worker.reset_period()
        self._merge.reset_period()
        self._traces.clear()
        self._tuples_processed = 0
        self._objects = 0
        self._insertions = 0
        self._deletions = 0
        self._matches_produced = 0
        self._object_fanout_total = 0
        self._query_fanout_total = 0
