"""Pluggable transport between the cluster coordinator and its workers.

The paper's PS2Stream deployment (Section III-B) is a Storm topology:
dispatchers, workers and mergers are separate executors exchanging tuples
over the network.  Earlier revisions of this reproduction collapsed that
into direct Python method calls inside one interpreter; this module makes
the dispatcher→worker→merger communication explicit again so the same
coordinator code can drive

* an :class:`InProcessTransport` — the *reference* backend.  Workers are
  plain :class:`~repro.runtime.worker.WorkerNode` objects in the
  coordinator's process and every message is executed synchronously by a
  direct call, preserving the exact semantics (and float-for-float
  results) of the pre-transport engine; and
* a :class:`FabricTransport` — each worker is a fabric endpoint
  (:mod:`repro.runtime.fabric`): its own OS process served over a pickled
  pipe (``multiprocess``), or a ``repro serve --role worker`` endpoint
  reached over TCP (``socket``).  One window's worth of routed work is
  shipped per worker as a single :class:`RouteBatch`, all batches are
  submitted before any reply is collected, so workers match their object
  groups concurrently on separate cores (or hosts).

The message vocabulary mirrors the Storm streams of the paper:

* :class:`RouteBatch` — dispatcher→worker: an ordered window of routed
  operations (object matching, query insertions/deletions) for one worker.
* :class:`MatchResults` — worker→merger/coordinator: the match results and
  per-object costs of one batched matching operation.
* :class:`DeliverResults` — worker/coordinator→merger shard: one batch of
  match results for one merger's dedup/delivery.  In the full
  multiprocess deployment workers ship these directly to the merger
  shards (:mod:`repro.runtime.merge`) and the coordinator only ever sees
  the per-object costs — no result round trip through the coordinator.
* :class:`MergerStats` — merger→coordinator: per-period busy cost and
  delivered/duplicate counts the reports read.
* :class:`InstallQueries` / :class:`ExtractCells` /
  :class:`ExtractKeywords` — the Section V migration protocol: the
  coordinator pulls per-query ``(cell, posting keyword)`` assignments out
  of the source worker and installs them on the target.
* :class:`AdjustBarrier` — the closed-loop adjustment fence: before an
  adjustment round mutates routing state, every worker acknowledges the
  epoch, guaranteeing all previously shipped work has been applied.
* :class:`StatsReport` — worker→coordinator: the per-period load,
  busy-time, memory and population numbers the reports and the Section V
  adjusters read.

Every backend produces byte-identical
:class:`~repro.runtime.metrics.RunReport` values on the same stream
(``tests/test_transport.py``); the process-per-worker backend
additionally turns the simulated parallelism into real multi-core
wall-clock speedups (``benchmarks/test_multiprocess_speedup.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.costmodel import CostModel
from ..core.geometry import Rect
from ..core.objects import MatchResult, QueryDeletion, QueryInsertion, SpatioTextualObject, STSQuery
from ..core.text import TermStatistics
from ..indexes.gi2 import CellStats
from ..indexes.grid import CellCoord
from .checkpoint import SnapshotAssignments, WorkerSnapshot
from .fabric import (
    AdjustBarrier,
    BarrierAck,
    FaultSpec,
    Fleet,
    RemoteError,
    RoleHost,
    Shutdown,
    TransportError,
    assign_addresses,
    connect_fleet,
    register_role,
    spawn_fleet,
    spawn_socket_fleet,
)
from .profiling import MatchProfile, ProfileDrain
from .telemetry import GaugeSample, TelemetryBatch, TelemetryDrain
from .worker import QueryAssignment, WorkerNode

__all__ = [
    "AdjustBarrier",
    "BarrierAck",
    "CellStatsRequest",
    "DeleteById",
    "DeleteQuery",
    "DeliverResults",
    "ExtractCells",
    "ExtractKeywords",
    "FabricTransport",
    "InProcessTransport",
    "InsertPairs",
    "InsertQuery",
    "InstallQueries",
    "MatchObjects",
    "MatchOne",
    "MatchResults",
    "MergerReset",
    "MergerStats",
    "MergerStatsRequest",
    "MultiprocessTransport",
    "RemoteCallable",
    "RemoteError",
    "RouteBatch",
    "Shutdown",
    "SinkDrain",
    "SnapshotAssignments",
    "StatsReport",
    "StatsRequest",
    "Transport",
    "TransportError",
    "WorkerCall",
    "WorkerHost",
    "WorkerProxy",
    "WorkerSnapshot",
    "execute_ops",
    "make_result_shipper",
    "make_transport",
    "partition_results",
    "ship_results",
]


# ----------------------------------------------------------------------
# Worker operations (the payload of a RouteBatch, applied in order)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class MatchOne:
    """Match a single object (per-tuple reference path)."""

    obj: SpatioTextualObject


@dataclass(slots=True)
class MatchObjects:
    """Match a run of objects in one bulk call (batched engine).

    ``cells`` optionally carries the objects' precomputed routing-grid
    cells (valid when the routing grid is aligned with the worker's grid).
    """

    objects: Sequence[SpatioTextualObject]
    cells: Optional[Sequence[CellCoord]] = None


@dataclass(slots=True)
class InsertQuery:
    """Register a routed query insertion (strict/per-tuple paths).

    ``assignment`` is the list of ``(routing cell, posting keyword)``
    pairs the dispatcher routed to this worker, or ``None`` for the full
    posting footprint fallback.
    """

    insertion: QueryInsertion
    assignment: Optional[Sequence[Tuple[CellCoord, str]]] = None
    cells_aligned: bool = False


@dataclass(slots=True)
class InsertPairs:
    """Register exactly the routed posting pairs (deferred-barrier path)."""

    query: STSQuery
    pairs: Sequence[Tuple[CellCoord, str]]


@dataclass(slots=True)
class DeleteQuery:
    """Apply a routed query deletion (strict/per-tuple paths)."""

    deletion: QueryDeletion


@dataclass(slots=True)
class DeleteById:
    """Lazily delete a query by id (deferred-barrier path)."""

    query_id: int


WorkerOp = Union[MatchOne, MatchObjects, InsertQuery, InsertPairs, DeleteQuery, DeleteById]


@dataclass(slots=True)
class RouteBatch:
    """Dispatcher→worker: one window's ordered operations for one worker."""

    ops: Sequence[WorkerOp]


@dataclass(slots=True)
class MatchResults:
    """Worker→coordinator reply to a matching op: results + per-object costs.

    ``produced`` counts the results the op produced.  It equals
    ``len(results)`` unless the worker shipped the results directly to the
    merger shards (``results`` is then empty — the coordinator only needs
    the count); ``-1`` means "not set, use ``len(results)``".
    """

    results: Tuple[MatchResult, ...]
    costs: Tuple[float, ...]
    produced: int = -1

    @property
    def produced_count(self) -> int:
        return self.produced if self.produced >= 0 else len(self.results)


# ----------------------------------------------------------------------
# Merger-tier messages (worker/coordinator -> merger shard and back)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class DeliverResults:
    """Worker/coordinator→merger: match results for one merger's shard.

    The data-plane message of the merger tier: all results in the batch
    already belong to the receiving shard (``query_id % num_mergers``).
    Fire-and-forget — the shard acknowledges nothing; control messages on
    the same inbox fence behind every earlier delivery.
    """

    results: Tuple[MatchResult, ...]


def partition_results(
    results: Sequence[MatchResult], num_mergers: int
) -> Dict[int, List[MatchResult]]:
    """Group results by owning merger shard, preserving arrival order.

    ``query_id % num_mergers`` is THE shard assignment of the merger
    tier: every producer (coordinator-side delivery and direct worker
    shipping alike) must partition through this one function, because a
    query's replicated matches only deduplicate if they meet at the same
    shard.
    """
    per_merger: Dict[int, List[MatchResult]] = {}
    for result in results:
        merger_id = result.query_id % num_mergers
        batch = per_merger.get(merger_id)
        if batch is None:
            per_merger[merger_id] = [result]
        else:
            batch.append(result)
    return per_merger


def ship_results(
    results: Sequence[MatchResult],
    num_mergers: int,
    send: Callable[[int, Sequence[MatchResult]], None],
) -> None:
    """The one delivery shape every producer uses: one ``send(merger_id,
    batch)`` per involved shard, whole-batch shortcut for a single shard."""
    if not results:
        return
    if num_mergers == 1:
        send(0, results)
        return
    for merger_id, batch in partition_results(results, num_mergers).items():
        send(merger_id, batch)


@dataclass(slots=True)
class MergerStatsRequest:
    """Ask a merger shard for its :class:`MergerStats`."""


@dataclass(slots=True)
class MergerStats:
    """Merger→coordinator: the per-period numbers the reports consume."""

    merger_id: int
    busy_cost: float
    received: int
    delivered: int
    duplicates: int
    memory_bytes: int


@dataclass(slots=True)
class MergerReset:
    """Start a new measurement period on a merger shard (acked)."""


@dataclass(slots=True)
class SinkDrain:
    """Pull (and clear) the buffered deliveries of a shard's sink."""


# ----------------------------------------------------------------------
# Control-plane messages (migration, stats, adjustment fence)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class InstallQueries:
    """Install migrated query assignments on the receiving worker."""

    assignments: Sequence[QueryAssignment]


@dataclass(slots=True)
class ExtractCells:
    """Pull the per-query assignments registered in ``cells`` (Section V)."""

    cells: Sequence[CellCoord]


@dataclass(slots=True)
class ExtractKeywords:
    """Pull one cell's assignments for specific posting keywords (Phase I)."""

    cell: CellCoord
    keywords: Sequence[str]


@dataclass(slots=True)
class StatsRequest:
    """Ask a worker for its :class:`StatsReport`."""


@dataclass(slots=True)
class StatsReport:
    """Worker→coordinator: the numbers reports and adjusters consume."""

    worker_id: int
    busy_cost: float
    load: float
    memory_bytes: int
    query_count: int


@dataclass(slots=True)
class CellStatsRequest:
    """Ask a worker for its Definition-3 per-cell statistics."""


@dataclass(slots=True)
class WorkerCall:
    """Generic escape hatch: call (or read) ``worker.<path[0]>.<path[1]>…``.

    ``args is None`` reads the resolved attribute; otherwise it is invoked
    with ``*args, **kwargs``.  Used by the Section V adjusters, which
    inspect and reconcile worker GI2 state directly.
    """

    path: Tuple[str, ...]
    args: Optional[Tuple[Any, ...]] = None
    kwargs: Optional[Dict[str, Any]] = None


@dataclass(slots=True)
class RemoteCallable:
    """Reply marker: a :class:`WorkerCall` attribute read hit a method.

    Bound methods cannot be pickled back to the coordinator (they drag the
    whole worker state along), so the host answers with this marker and
    the proxy turns it into an RPC-invoking callable.
    """

    name: str


# ----------------------------------------------------------------------
# Operation execution (shared by all backends — the reference semantics)
# ----------------------------------------------------------------------
def execute_ops(
    worker: WorkerNode,
    ops: Sequence[WorkerOp],
    deliver: Optional[Callable[[Sequence[MatchResult]], None]] = None,
) -> List[Optional[MatchResults]]:
    """Apply one :class:`RouteBatch`'s operations to a worker, in order.

    This function *is* the transport seam's semantic contract: the
    in-process backend runs it directly against the coordinator's worker
    objects and the fabric worker host runs it inside the worker process,
    so every backend executes exactly the same :class:`WorkerNode` calls
    in exactly the same order.  Matching ops reply with
    :class:`MatchResults`; update ops reply ``None`` (their costs are the
    fixed Definition-1 constants the coordinator already knows).

    ``deliver`` is the direct worker→merger shipping hook: when set (the
    full multiprocess deployment), each matching op's results are handed
    to it — it ships them to the merger shards — and the reply carries
    only the per-object costs plus the produced count, so match results
    never round-trip through the coordinator.
    """
    replies: List[Optional[MatchResults]] = []
    model = worker.cost_model
    for op in ops:
        kind = type(op)
        if kind is MatchObjects:
            results, costs = worker.handle_object_batch(op.objects, op.cells)
            if deliver is None:
                replies.append(MatchResults(tuple(results), tuple(costs), len(results)))
            else:
                deliver(results)
                replies.append(MatchResults((), tuple(costs), len(results)))
        elif kind is InsertPairs:
            # Inlined WorkerNode.handle_insertion for pre-routed pairs (hot
            # loop of the deferred-barrier engine): register the routed
            # postings, count, and charge the fixed insertion cost.
            worker.index.insert_pairs(op.query, op.pairs)
            worker.counters.insertions += 1
            worker.busy_cost += model.insert_handling
            replies.append(None)
        elif kind is DeleteById:
            # Inlined WorkerNode.handle_deletion (hot loop).
            worker.index.delete(op.query_id)
            worker.counters.deletions += 1
            worker.busy_cost += model.delete_handling
            replies.append(None)
        elif kind is MatchOne:
            results = worker.handle_object(op.obj)
            if deliver is None:
                replies.append(
                    MatchResults(tuple(results), (worker.last_tuple_cost,), len(results))
                )
            else:
                deliver(results)
                replies.append(MatchResults((), (worker.last_tuple_cost,), len(results)))
        elif kind is InsertQuery:
            worker.handle_insertion(op.insertion, op.assignment, cells_aligned=op.cells_aligned)
            replies.append(None)
        elif kind is DeleteQuery:
            worker.handle_deletion(op.deletion)
            replies.append(None)
        else:
            raise TransportError("unknown worker op %r" % (op,))
    return replies


def _worker_stats(worker: WorkerNode) -> StatsReport:
    return StatsReport(
        worker_id=worker.worker_id,
        busy_cost=worker.busy_cost,
        load=worker.load(),
        memory_bytes=worker.memory_bytes(),
        query_count=worker.query_count,
    )


def _worker_gauge(worker: WorkerNode) -> GaugeSample:
    """One telemetry gauge sample from live worker state (read-only)."""
    return GaugeSample(
        tier="worker",
        endpoint_id=worker.worker_id,
        busy_cost=worker.busy_cost,
        memory_bytes=worker.memory_bytes(),
        depth=worker.query_count,
    )


def _worker_profile(worker: WorkerNode) -> Tuple[MatchProfile, ...]:
    """The worker's profile events — empty when profiling is off."""
    counters = worker.index.profile
    if counters is None:
        return ()
    return (counters.event(worker.worker_id),)


def _resolve_call(worker: WorkerNode, message: WorkerCall) -> Any:
    target: Any = worker
    for name in message.path:
        target = getattr(target, name)
    if message.args is None:
        if callable(target):
            return RemoteCallable(message.path[-1])
        return target
    return target(*message.args, **(message.kwargs or {}))


# ----------------------------------------------------------------------
# Transport interface
# ----------------------------------------------------------------------
class Transport:
    """Coordinator-side surface for talking to the worker fleet.

    ``workers`` maps worker id → handle; for the in-process backend the
    handle is the :class:`WorkerNode` itself, for the fabric backends a
    :class:`WorkerProxy` forwarding the same surface over the channel.
    The coordinator never assumes which one it holds.
    """

    backend_name = "abstract"
    workers: Mapping[int, Any] = {}

    def exchange(
        self, batches: Mapping[int, RouteBatch]
    ) -> Dict[int, List[Optional[MatchResults]]]:
        """Ship one window's :class:`RouteBatch` per worker; gather replies.

        Reply dict preserves ``batches``'s iteration order, so coordinator
        code that merges results stays deterministic across backends.
        """
        raise NotImplementedError

    def worker_stats(self) -> Dict[int, StatsReport]:
        """One :class:`StatsReport` per worker, keyed by worker id."""
        raise NotImplementedError

    def barrier(self) -> int:
        """Run one :class:`AdjustBarrier` fence; returns the new epoch."""
        raise NotImplementedError

    def call(
        self,
        worker_id: int,
        path: Tuple[str, ...],
        args: Optional[Tuple[Any, ...]] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Invoke (or, with ``args=None``, read) an attribute path on a worker."""
        raise NotImplementedError

    def snapshot_assignments(self) -> Dict[int, List[QueryAssignment]]:
        """Every worker's live assignment partition, keyed by worker id.

        The checkpoint primitive: one :class:`SnapshotAssignments`
        request per worker at a quiescent point, replies re-keyed in
        sorted worker order so checkpoints are deterministic across
        backends.
        """
        raise NotImplementedError

    def install_fault_plan(self, faults: Sequence[FaultSpec]) -> None:
        """Arm injected faults on this backend's send path (chaos tests).

        The in-process reference has no transport to fault; default no-op.
        """

    def drain_telemetry(self) -> List[GaugeSample]:
        """One gauge sample per worker, in ascending worker-id order.

        A read-only snapshot: draining never touches the Definition-1
        busy counters reports derive from, so a drained run's report is
        byte-identical to an undrained one (the telemetry invariant).
        """
        raise NotImplementedError

    def drain_profile(self) -> List[MatchProfile]:
        """One profile event per profiling worker, ascending worker id.

        Empty when profiling is off; read-only like telemetry, so
        draining never perturbs a report.
        """
        raise NotImplementedError

    def discard_worker(self, worker_id: int) -> None:
        """Drop a dead worker from the fleet (the recovery path).

        After this, the worker no longer participates in exchanges,
        stats, or barriers; idempotent for an already-discarded id.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (terminates worker processes)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessTransport(Transport):
    """Reference backend: workers live in the coordinator's interpreter."""

    backend_name = "inprocess"

    def __init__(self, workers: Dict[int, WorkerNode]) -> None:
        self.workers: Dict[int, WorkerNode] = workers
        self._epoch = 0

    def exchange(
        self, batches: Mapping[int, RouteBatch]
    ) -> Dict[int, List[Optional[MatchResults]]]:
        workers = self.workers
        return {
            worker_id: execute_ops(workers[worker_id], batch.ops)
            for worker_id, batch in batches.items()
        }

    def worker_stats(self) -> Dict[int, StatsReport]:
        # Sorted by worker id so report merges never depend on the order
        # the worker fleet happened to be enumerated in.
        return {
            worker_id: _worker_stats(self.workers[worker_id])
            for worker_id in sorted(self.workers)
        }

    def barrier(self) -> int:
        # Execution is synchronous: every shipped message has already been
        # applied, so the fence reduces to bumping the epoch.
        self._epoch += 1
        return self._epoch

    def call(
        self,
        worker_id: int,
        path: Tuple[str, ...],
        args: Optional[Tuple[Any, ...]] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        return _resolve_call(self.workers[worker_id], WorkerCall(path, args, kwargs))

    def snapshot_assignments(self) -> Dict[int, List[QueryAssignment]]:
        return {
            worker_id: self.workers[worker_id].snapshot_assignments()
            for worker_id in sorted(self.workers)
        }

    def drain_telemetry(self) -> List[GaugeSample]:
        return [_worker_gauge(self.workers[worker_id]) for worker_id in sorted(self.workers)]

    def drain_profile(self) -> List[MatchProfile]:
        return [
            event
            for worker_id in sorted(self.workers)
            for event in _worker_profile(self.workers[worker_id])
        ]

    def discard_worker(self, worker_id: int) -> None:
        self.workers.pop(worker_id, None)


# ----------------------------------------------------------------------
# The worker role host (served by the fabric's generic serve loop)
# ----------------------------------------------------------------------
def make_result_shipper(
    merger_inboxes: Sequence[Any],
) -> Callable[[Sequence[MatchResult]], None]:
    """Build the direct worker→merger shipping hook over shard inboxes.

    Partitions a matching op's results by ``query_id % num_mergers`` —
    the same shard assignment the coordinator-side delivery uses — and
    writes one :class:`DeliverResults` per involved shard.  The inboxes
    are ``SimpleQueue``s: ``put`` serialises and writes synchronously in
    the calling thread, so by the time the worker replies to the
    coordinator its deliveries are already in the shard pipes — which is
    what lets control messages enqueued later act as a fence.
    """
    num_mergers = len(merger_inboxes)

    def send(merger_id: int, batch: Sequence[MatchResult]) -> None:
        merger_inboxes[merger_id].put(DeliverResults(tuple(batch)))

    def deliver(results: Sequence[MatchResult]) -> None:
        ship_results(results, num_mergers, send)

    return deliver


class WorkerHost(RoleHost):
    """One worker endpoint's role logic: a :class:`WorkerNode` plus the
    typed-message surface the coordinator drives it through.

    ``init`` carries the :class:`WorkerNode` constructor arguments under
    ``"worker"`` and, for process-per-worker deployments that inherit the
    merger shard inboxes at spawn, the ``"merger_endpoints"`` enabling
    direct worker→merger result shipping.
    """

    def __init__(self, worker_id: int, init: Mapping[str, Any]) -> None:
        self.worker = WorkerNode(worker_id, **init["worker"])
        merger_inboxes = init.get("merger_endpoints")
        self._deliver = make_result_shipper(merger_inboxes) if merger_inboxes else None

    def handle(self, message: Any) -> Any:
        kind = type(message)
        worker = self.worker
        if kind is RouteBatch:
            return execute_ops(worker, message.ops, self._deliver)
        if kind is StatsRequest:
            return _worker_stats(worker)
        if kind is CellStatsRequest:
            return worker.cell_stats()
        if kind is WorkerCall:
            return _resolve_call(worker, message)
        if kind is InstallQueries:
            return worker.install_queries(message.assignments)
        if kind is ExtractCells:
            return worker.extract_cells(message.cells)
        if kind is ExtractKeywords:
            return worker.extract_keywords(message.cell, message.keywords)
        if kind is SnapshotAssignments:
            return WorkerSnapshot(
                worker.worker_id, tuple(worker.snapshot_assignments())
            )
        if kind is TelemetryDrain:
            return TelemetryBatch(worker.worker_id, (_worker_gauge(worker),))
        if kind is ProfileDrain:
            return TelemetryBatch(worker.worker_id, _worker_profile(worker))
        raise TransportError("unknown message %r" % (message,))


register_role("worker", WorkerHost)


# ----------------------------------------------------------------------
# Fabric-backed transport (multiprocess and socket deployments)
# ----------------------------------------------------------------------
class IndexProxy:
    """Forwards ``worker.index.<name>`` access over the transport.

    Attribute access probes the remote kind once: a method answers with a
    :class:`RemoteCallable` marker and becomes a cached RPC-invoking
    callable; a plain attribute/property answers with its value (fetched
    fresh on every access — it may be mutable).  ``grid`` is immutable per
    worker and cached after the first fetch.
    """

    def __init__(self, transport: "FabricTransport", worker_id: int) -> None:
        self._transport = transport
        self._worker_id = worker_id
        self._grid = None

    @property
    def grid(self) -> Any:
        if self._grid is None:
            self._grid = self._transport.call(self._worker_id, ("index", "grid"), None)
        return self._grid

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        result = self._transport.call(self._worker_id, ("index", name), None)
        if not isinstance(result, RemoteCallable):
            return result
        transport = self._transport
        worker_id = self._worker_id

        def _invoke(*args: Any, **kwargs: Any) -> Any:
            return transport.call(worker_id, ("index", name), tuple(args), kwargs or None)

        _invoke.__name__ = name
        # Cache the caller so later accesses skip the kind probe.
        self.__dict__[name] = _invoke
        return _invoke


class WorkerProxy:
    """Coordinator-side handle of one remote worker endpoint.

    Exposes the :class:`WorkerNode` surface the coordinator and the
    Section V adjusters use, each method forwarding one typed message.
    """

    def __init__(self, transport: "FabricTransport", worker_id: int) -> None:
        self.worker_id = worker_id
        self._transport = transport
        self.index = IndexProxy(transport, worker_id)

    # -- stats ---------------------------------------------------------
    @property
    def busy_cost(self) -> float:
        return self._transport.call(self.worker_id, ("busy_cost",), None)

    @property
    def query_count(self) -> int:
        return self._transport.call(self.worker_id, ("query_count",), None)

    def load(self) -> float:
        return self._transport.call(self.worker_id, ("load",))

    def memory_bytes(self) -> int:
        return self._transport.call(self.worker_id, ("memory_bytes",))

    def cell_stats(self) -> List[CellStats]:
        return self._transport.request(self.worker_id, CellStatsRequest())

    # -- migration protocol -------------------------------------------
    def extract_cells(self, cells: Iterable[CellCoord]) -> List[QueryAssignment]:
        return self._transport.request(self.worker_id, ExtractCells(tuple(cells)))

    def extract_keywords(self, cell: CellCoord, keywords: Iterable[str]) -> List[QueryAssignment]:
        return self._transport.request(self.worker_id, ExtractKeywords(cell, tuple(keywords)))

    def install_queries(self, assignments: Iterable[QueryAssignment]) -> int:
        return self._transport.request(self.worker_id, InstallQueries(tuple(assignments)))

    def snapshot_assignments(self) -> List[QueryAssignment]:
        snapshot = self._transport.request(self.worker_id, SnapshotAssignments())
        return list(snapshot.assignments)

    def reconcile_queries(self, *args: Any, **kwargs: Any) -> int:
        """One bulk reconciliation message (§V-B finalisation) per round.

        Forwards the whole per-worker plan as a single :class:`WorkerCall`
        — one round trip instead of one RPC per reconciled query.
        """
        return self._transport.call(self.worker_id, ("reconcile_queries",), args, kwargs or None)

    # -- period management --------------------------------------------
    def reset_period(self) -> None:
        self._transport.call(self.worker_id, ("reset_period",))

    def reset_load_measurement(self) -> None:
        self._transport.call(self.worker_id, ("reset_load_measurement",))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WorkerProxy(id=%d)" % self.worker_id


class FabricTransport(Transport):
    """Worker fleet behind fabric channels: one endpoint per worker.

    All of a window's :class:`RouteBatch` messages are written before any
    reply is read (:meth:`exchange`), so worker endpoints execute their
    object-matching groups concurrently; the coordinator then collects
    the replies in deterministic order.  The same class serves the
    ``multiprocess`` deployment (one local OS process per worker over a
    pipe) and the ``socket`` deployment (``repro serve`` endpoints over
    TCP) — only the fleet construction differs.
    """

    def __init__(self, fleet: Fleet) -> None:
        self._fleet = fleet
        self.backend_name = fleet.backend_name
        self.workers: Dict[int, WorkerProxy] = {
            worker_id: WorkerProxy(self, worker_id) for worker_id in fleet.endpoint_ids
        }

    # -- plumbing ------------------------------------------------------
    def request(self, worker_id: int, message: Any) -> Any:
        """Synchronous round trip of one control-plane message."""
        return self._fleet.request(worker_id, message)

    # -- Transport surface --------------------------------------------
    def exchange(
        self, batches: Mapping[int, RouteBatch]
    ) -> Dict[int, List[Optional[MatchResults]]]:
        return self._fleet.exchange(batches)

    def worker_stats(self) -> Dict[int, StatsReport]:
        stats = self._fleet.broadcast(StatsRequest())
        # Replies are gathered in whatever order the fleet is polled;
        # re-key sorted by worker id so downstream merges are deterministic
        # regardless of reply arrival order.
        return {worker_id: stats[worker_id] for worker_id in sorted(stats)}

    def barrier(self) -> int:
        return self._fleet.barrier()

    def call(
        self,
        worker_id: int,
        path: Tuple[str, ...],
        args: Optional[Tuple[Any, ...]] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        return self.request(worker_id, WorkerCall(path, args, kwargs))

    def snapshot_assignments(self) -> Dict[int, List[QueryAssignment]]:
        snapshots = self._fleet.broadcast(SnapshotAssignments())
        return {
            worker_id: list(snapshots[worker_id].assignments)
            for worker_id in sorted(snapshots)
        }

    def install_fault_plan(self, faults: Sequence[FaultSpec]) -> None:
        self._fleet.install_fault_plan(faults)

    def drain_telemetry(self) -> List[GaugeSample]:
        batches = self._fleet.broadcast(TelemetryDrain())
        return [
            sample
            for worker_id in sorted(batches)
            for sample in batches[worker_id].events
        ]

    def drain_profile(self) -> List[MatchProfile]:
        batches = self._fleet.broadcast(ProfileDrain())
        return [
            event
            for worker_id in sorted(batches)
            for event in batches[worker_id].events
        ]

    def discard_worker(self, worker_id: int) -> None:
        """Drop a dead endpoint and re-align the surviving channels.

        The fleet-level discard closes the channel and reaps the
        process; the resync barrier then drains any replies the aborted
        window left queued on survivors, so the transport's next
        request/reply pair starts clean.
        """
        if worker_id not in self.workers:
            return
        self._fleet.discard(worker_id)
        self._fleet.resync()
        self.workers.pop(worker_id, None)

    def close(self) -> None:
        self._fleet.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: Backwards-compatible name: the process-per-worker deployment is a
#: FabricTransport whose fleet was spawned locally.
MultiprocessTransport = FabricTransport


#: Registry of the selectable transport backends (``--backend`` on the CLI).
TRANSPORT_BACKENDS = ("inprocess", "multiprocess", "socket")


def make_transport(
    backend: str,
    worker_ids: Sequence[int],
    *,
    bounds: Rect,
    granularity: int,
    cost_model: CostModel,
    term_statistics: Optional[TermStatistics],
    merger_endpoints: Optional[Sequence[Any]] = None,
    addresses: Optional[Sequence[Tuple[str, int]]] = None,
    profiling: bool = False,
) -> Transport:
    """Build the transport (and its workers) for a cluster deployment.

    ``merger_endpoints`` (the merge backend's per-shard inboxes, when the
    merger tier runs out of process) turns on direct worker→merger result
    shipping in the multiprocess backend; the in-process backend ignores
    it — its workers reply to the coordinator, which forwards to the
    merge backend itself.  The socket backend also ignores it: queue
    inboxes cannot cross a TCP connection, and per-connection ordering
    gives no fence across producers, so socket workers return results to
    the coordinator, which delivers to the merger shards itself (reports
    are unaffected — delivery hops are not part of the RunReport).

    ``addresses`` (socket backend only) lists the ``repro serve --role
    worker`` endpoints from the cluster manifest, one per worker id in
    order; without it the coordinator spawns loopback serve processes.
    """
    if backend == "inprocess":
        workers = {
            worker_id: WorkerNode(
                worker_id,
                bounds,
                granularity=granularity,
                cost_model=cost_model,
                term_statistics=term_statistics,
                profiling=profiling,
            )
            for worker_id in worker_ids
        }
        return InProcessTransport(workers)
    if backend not in ("multiprocess", "socket"):
        raise ValueError(
            "unknown transport backend %r (expected one of %s)"
            % (backend, ", ".join(TRANSPORT_BACKENDS))
        )
    worker_init = {
        "bounds": bounds,
        "granularity": granularity,
        "cost_model": cost_model,
        "term_statistics": term_statistics,
        # A plain bool crosses the Init handshake, never the ProfilingSpec.
        "profiling": profiling,
    }
    if backend == "multiprocess":
        endpoints = tuple(merger_endpoints) if merger_endpoints else None
        inits = {
            worker_id: {"worker": worker_init, "merger_endpoints": endpoints}
            for worker_id in worker_ids
        }
        fleet = spawn_fleet("worker", inits, label="worker")
    else:
        inits = {worker_id: {"worker": worker_init} for worker_id in worker_ids}
        if addresses:
            endpoint_map = assign_addresses(addresses, worker_ids, "worker")
            fleet = connect_fleet("worker", endpoint_map, inits, label="worker")
        else:
            fleet = spawn_socket_fleet("worker", inits, label="worker")
    return FabricTransport(fleet)
