"""The declarative protocol registry of the runtime fabric.

PRs 3-6 grew a three-tier distributed runtime whose message vocabulary
lives in :mod:`repro.runtime.transport`, :mod:`repro.runtime.dispatch`,
:mod:`repro.runtime.merge` and :mod:`repro.runtime.fabric`.  Until this
module existed, the mapping from message type to the role host that must
handle it was implied by docstrings and enforced only by the serve loop
raising ``TransportError`` at runtime — i.e. by a hung pipe when a new
message shipped without its handler.  This registry makes the routing
explicit and machine-checkable:

* ``MESSAGE_ROUTING`` — for each role, the request messages its host's
  ``handle`` method must dispatch.  ``repro lint`` rule **RL001** parses
  this table and verifies every listed message appears in the host's
  dispatch chain, and that every message dataclass defined in
  ``PROTOCOL_MODULES`` is classified below (a brand-new message cannot be
  added without declaring who handles it).
* ``REPLY_MESSAGES`` / ``PAYLOAD_DATACLASSES`` — the rest of the wire
  vocabulary: replies the coordinator reads back, and dataclasses that
  ride *inside* other messages (worker ops in a ``RouteBatch``, sink
  specs in an ``Init``).  Rule **RL003** checks every wire-crossing
  dataclass — requests, replies and payloads — for transitive
  picklability.
* ``FABRIC_MESSAGES`` — handled by :func:`repro.runtime.fabric.serve_loop`
  itself, identically for every role (shutdown, barrier fence, Init
  handshake); ``INTERNAL_DATACLASSES`` never cross a process boundary.
* :func:`mutates_routing` / :func:`barrier_context` — the fence-discipline
  registry of rule **RL005**: a function that mutates routing state (H1
  cell ownership, the routing index object itself) must be decorated, and
  the linter proves it either bumps the routing version (so stale
  dispatch-shard replicas re-sync before the next routed window) or is
  only ever reached from an ``AdjustBarrier`` context.

Everything here is a *literal* — the linter reads this module as an AST,
never imports it — and :mod:`tests.test_lint` imports it for real to
assert the names resolve against the live modules, so the table cannot
drift from the code.
"""

from __future__ import annotations

from typing import Callable, Mapping, Tuple, TypeVar

__all__ = [
    "FABRIC_MESSAGES",
    "INTERNAL_DATACLASSES",
    "MESSAGE_ROUTING",
    "PAYLOAD_DATACLASSES",
    "PROTOCOL_MODULES",
    "REPLY_MESSAGES",
    "ROLE_HOSTS",
    "barrier_context",
    "mutates_routing",
]


#: Modules whose dataclasses form the wire vocabulary of the fabric.
#: Every ``@dataclass`` defined in one of them must be classified in
#: exactly one of the tables below (checked by lint rule RL001).
PROTOCOL_MODULES: Tuple[str, ...] = (
    "repro.runtime.fabric",
    "repro.runtime.transport",
    "repro.runtime.dispatch",
    "repro.runtime.merge",
    "repro.runtime.checkpoint",
    "repro.runtime.telemetry",
    "repro.runtime.profiling",
)

#: role -> request messages its host's ``handle`` method must dispatch.
MESSAGE_ROUTING: Mapping[str, Tuple[str, ...]] = {
    "worker": (
        "RouteBatch",
        "StatsRequest",
        "CellStatsRequest",
        "WorkerCall",
        "InstallQueries",
        "ExtractCells",
        "ExtractKeywords",
        "SnapshotAssignments",
        "TelemetryDrain",
        "ProfileDrain",
    ),
    "dispatcher": (
        "RouteWindow",
        "RouteProbe",
        "RouteUpdate",
        "SyncRoutingIndex",
        "ShardMemoryRequest",
        "TelemetryDrain",
        "ProfileDrain",
    ),
    "merger": (
        "DeliverResults",
        "MergerStatsRequest",
        "MergerReset",
        "SinkDrain",
        "TelemetryDrain",
        "ProfileDrain",
    ),
}

#: role -> the host class serving that role's endpoints.
ROLE_HOSTS: Mapping[str, str] = {
    "worker": "WorkerHost",
    "dispatcher": "DispatchHost",
    "merger": "MergeHost",
}

#: Messages the generic serve loop handles before the host sees them.
FABRIC_MESSAGES: Tuple[str, ...] = ("Shutdown", "AdjustBarrier", "Init")

#: Endpoint->coordinator replies (read by Fleet.receive, never dispatched).
REPLY_MESSAGES: Tuple[str, ...] = (
    "BarrierAck",
    "MatchResults",
    "MergerStats",
    "RemoteCallable",
    "RemoteError",
    "StatsReport",
    "TelemetryBatch",
    "TupleRouting",
    "WindowRouting",
    "WorkerSnapshot",
)

#: Dataclasses that cross the wire only inside another message (worker
#: ops inside a RouteBatch, sink specs inside an Init handshake).  They
#: are pickle-checked (RL003) like the messages that carry them.
PAYLOAD_DATACLASSES: Tuple[str, ...] = (
    "MatchOne",
    "MatchObjects",
    "InsertQuery",
    "InsertPairs",
    "DeleteQuery",
    "DeleteById",
    "SinkSpec",
    "GaugeSample",
    "MatchProfile",
    "RouteProfile",
    "DedupProfile",
)

#: Dataclasses in the protocol modules that never cross a process
#: boundary (coordinator-side merge results, host manifests, checkpoint
#: state and the fault-injection specs of the chaos harness).
INTERNAL_DATACLASSES: Tuple[str, ...] = (
    "RoutedWindow",
    "ClusterManifest",
    "Checkpoint",
    "FaultPlan",
    "FaultSpec",
    "RecoveryEvent",
    "RecoveryReport",
    "TelemetrySpec",
    "SpanHop",
    "WindowSpan",
    "LifecycleEvent",
    "ProfilingSpec",
    "ProfileReport",
)


_F = TypeVar("_F", bound=Callable[..., object])


def mutates_routing(func: _F) -> _F:
    """Declare that ``func`` mutates dispatcher routing state (H1/H2).

    Sharded dispatch routes on per-process *replicas* of the routing
    index (:mod:`repro.runtime.dispatch`); a mutation that does not bump
    the cluster's routing version leaves the replicas silently stale —
    every window after it routes on pre-mutation state and the delivered
    reports diverge from the reference backends.  Lint rule **RL005**
    checks every decorated function either calls
    ``invalidate_routing_caches`` / ``_mark_routing_mutated`` (directly
    or via another decorated function) or is reachable only from
    functions decorated with :func:`barrier_context`.
    """
    func.__mutates_routing__ = True  # type: ignore[attr-defined]
    return func


def barrier_context(func: _F) -> _F:
    """Declare that ``func`` runs inside an ``AdjustBarrier`` fence.

    Callers marked with this decorator have already quiesced the
    pipeline (every shipped window applied, every shard fenced), so a
    routing mutation they invoke is re-synced wholesale before the next
    routed window; RL005 accepts them as the only undecorated-bump
    callers of a :func:`mutates_routing` function.
    """
    func.__barrier_context__ = True  # type: ignore[attr-defined]
    return func
