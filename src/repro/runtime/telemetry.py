"""Fleet-wide runtime telemetry (tracing, gauges, lifecycle events).

The paper's whole evaluation (Section VI) is an observability exercise,
yet until this module the repro only materialised its numbers as one
end-of-run :class:`~repro.runtime.metrics.RunReport`.  This module makes
telemetry a first-class subsystem of the pipeline:

* **Per-window spans** — every batched window is traced through its
  route → match → merge/deliver hops (:class:`WindowSpan`, one
  :class:`SpanHop` per stage with monotonic timestamps), built
  coordinator-side where all three hops are orchestrated.
* **Per-tier gauge samples** — every role host (worker, dispatcher
  shard, merger shard) answers a :class:`TelemetryDrain` control message
  with a :class:`TelemetryBatch` of :class:`GaugeSample` events (busy
  cost, queue/structure depth, memory); the in-process reference
  backends synthesise identical samples from their local nodes.  Drains
  ride the existing control channels at quiescent points (window
  boundaries, ``AdjustBarrier`` fences, report time) — the "dedicated
  low-priority channel" of the design: no new socket, no interleaving
  with data-plane traffic.
* **Lifecycle events** — adjustment rounds, checkpoints, recoveries and
  endpoint deaths (:class:`LifecycleEvent`).

Everything lands in the coordinator's :class:`TelemetryHub`: a bounded
in-memory ring plus an optional JSONL sink (``--telemetry-path``), a
:class:`TierTimeseries` queryable at the adjustment barrier (the exact
per-tier busy-fraction input the ROADMAP's elastic controller needs),
and a Prometheus-style text exposition (:func:`telemetry_text`,
``Cluster.telemetry_text()`` / ``repro serve --telemetry-port``).

**Perturbation-freedom invariant.**  Telemetry is off by default and
must never change a delivered report: every report number derives from
Definition-1 simulated cost accounting, which :class:`TelemetryDrain`
handling only *reads*; and telemetry control messages carry the
``__telemetry_control__`` marker, which exempts them from the chaos
harness's fault-injection send counters (``Fleet._maybe_inject``) — so
faults fire at the exact same data-plane send whether telemetry is on
or off.  Wall-clock timestamps appear *only* inside telemetry events,
never in a report.  tests/test_telemetry.py pins reports byte-identical
telemetry-on vs. telemetry-off across inprocess × multiprocess ×
socket, including closed-loop adjustment and chaos recovery runs.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "GaugeSample",
    "LifecycleEvent",
    "SpanHop",
    "TelemetryBatch",
    "TelemetryDrain",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetryServer",
    "TelemetrySpec",
    "TierTimeseries",
    "WindowSpan",
    "decode_event",
    "encode_event",
    "read_events",
    "render_timeline",
    "telemetry_text",
]


#: The pipeline tiers gauge samples are keyed by.
TIERS: Tuple[str, ...] = ("dispatcher", "worker", "merger", "coordinator")


class TelemetryEvent:
    """Base class of every telemetry event type.

    Lint rule RL006 enforces that every subclass is classified in the
    protocol registry (:mod:`repro.runtime.protocol`) and is
    transitively pickle-safe — gauge samples cross process boundaries
    inside :class:`TelemetryBatch` replies, and every event must encode
    to the JSONL sink.
    """

    __slots__ = ()


@dataclass(slots=True, frozen=True)
class SpanHop(TelemetryEvent):
    """One stage of a window's journey through the pipeline.

    ``started_ms`` is monotonic milliseconds since the hub opened (one
    clock, coordinator-side, so hop timestamps are comparable across the
    whole run); ``elapsed_ms`` is the wall time the stage took.  For the
    ``route`` hop of a window the elapsed time is the window's residual
    wall time after the measured match and merge hops — inline routing
    is interleaved with the arrival scan, and sharded routing overlaps
    the previous window's matching, so the residual is the honest
    attribution on both engines.
    """

    stage: str  # "route" | "match" | "merge"
    tier: str
    started_ms: float
    elapsed_ms: float
    endpoints: int


@dataclass(slots=True, frozen=True)
class WindowSpan(TelemetryEvent):
    """The trace of one batched window: route → match → merge hops."""

    seq: int
    base: int
    size: int
    hops: Tuple[SpanHop, ...]


@dataclass(slots=True, frozen=True)
class GaugeSample(TelemetryEvent):
    """One endpoint's live state at a drain point.

    ``busy_cost`` is the endpoint's Definition-1 simulated busy counter
    (the same number reports are built from — telemetry only reads it);
    ``depth`` is the tier's natural queue/structure depth: registered
    queries for a worker, route-cache entries for a dispatch shard,
    dedup-window keys for a merger shard, coordinator-relayed result
    hops for the coordinator.  ``seq`` tags the window (or barrier)
    the sample was drained at; it is stamped coordinator-side.
    """

    tier: str
    endpoint_id: int
    busy_cost: float
    memory_bytes: int
    depth: int
    seq: int = -1


@dataclass(slots=True, frozen=True)
class LifecycleEvent(TelemetryEvent):
    """A control-plane milestone: adjustment / checkpoint / recovery."""

    kind: str  # "adjustment" | "checkpoint" | "recovery" | "endpoint_death"
    seq: int
    at_ms: float
    detail: str = ""
    epoch: int = -1
    tier: str = ""
    endpoint_id: int = -1


@dataclass(slots=True)
class TelemetryDrain:
    """Coordinator→endpoint: report your gauge sample(s).

    A replied control message, handled by every role host.  The
    ``__telemetry_control__`` marker (read by ``Fleet._maybe_inject``)
    keeps it out of the chaos harness's fault send counters — the
    perturbation-freedom invariant depends on faults counting only
    data-plane traffic.
    """

    __telemetry_control__ = True


@dataclass(slots=True)
class TelemetryBatch:
    """Endpoint→coordinator reply: the drained telemetry events."""

    endpoint_id: int
    events: Tuple[GaugeSample, ...]


@dataclass(frozen=True)
class TelemetrySpec:
    """Configuration of the telemetry subsystem (picklable, inert).

    ``ClusterConfig.telemetry`` is ``None`` by default — telemetry is
    strictly opt-in.  ``sample_every`` throttles per-window gauge drains
    (1 = every window); spans and lifecycle events are never throttled.
    """

    enabled: bool = True
    path: Optional[str] = None
    ring_size: int = 4096
    sample_every: int = 1


# ----------------------------------------------------------------------
# JSON codec (the JSONL sink format `repro report` reads back)
# ----------------------------------------------------------------------
_EVENT_TYPES: Mapping[str, type] = {
    "SpanHop": SpanHop,
    "WindowSpan": WindowSpan,
    "GaugeSample": GaugeSample,
    "LifecycleEvent": LifecycleEvent,
}


def encode_event(event: TelemetryEvent) -> Dict[str, Any]:
    """Encode one event as a JSON-safe dict tagged with its type name."""
    payload = asdict(event)
    payload["event"] = type(event).__name__
    return payload


def decode_event(payload: Mapping[str, Any]) -> TelemetryEvent:
    """Rebuild an event from its :func:`encode_event` dict."""
    data = dict(payload)
    name = data.pop("event")
    cls = _EVENT_TYPES.get(name)
    if cls is None:
        raise ValueError("unknown telemetry event type %r" % (name,))
    if cls is WindowSpan:
        data["hops"] = tuple(SpanHop(**hop) for hop in data.get("hops", ()))
    return cls(**data)


def read_events(path: str) -> List[TelemetryEvent]:
    """Read a telemetry JSONL file back into events (blank lines skipped)."""
    events: List[TelemetryEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(decode_event(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# The per-window metrics store (the elastic controller's input)
# ----------------------------------------------------------------------
class TierTimeseries:
    """Per-window gauge history, keyed by tier and endpoint.

    This is the store the ROADMAP's elastic pipeline needs at the
    ``AdjustBarrier`` fence: measured per-tier busy fractions from live
    samples rather than an end-of-run report.  Samples arrive in drain
    order, so ``series(tier, endpoint)`` is ordered by window sequence.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, int], List[GaugeSample]] = {}

    def add(self, sample: GaugeSample) -> None:
        self._series.setdefault((sample.tier, sample.endpoint_id), []).append(sample)

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._series.values())

    def tiers(self) -> List[str]:
        return sorted({tier for tier, _ in self._series})

    def endpoints(self, tier: str) -> List[int]:
        return sorted(endpoint for t, endpoint in self._series if t == tier)

    def series(self, tier: str, endpoint_id: int) -> List[GaugeSample]:
        return list(self._series.get((tier, endpoint_id), ()))

    def latest(self, tier: str) -> Dict[int, GaugeSample]:
        """The newest sample per endpoint of ``tier``."""
        return {
            endpoint: self._series[(tier, endpoint)][-1]
            for endpoint in self.endpoints(tier)
            if self._series[(tier, endpoint)]
        }

    def busy_fractions(self, tier: str) -> Dict[int, float]:
        """Each endpoint's share of the tier's total busy cost (sums to 1).

        Computed over the newest sample per endpoint; an idle tier
        (zero total busy) reports uniform shares, so a controller can
        always treat the result as a probability distribution.
        """
        latest = self.latest(tier)
        if not latest:
            return {}
        total = sum(sample.busy_cost for sample in latest.values())
        if total <= 0.0:
            uniform = 1.0 / len(latest)
            return {endpoint: uniform for endpoint in latest}
        return {
            endpoint: sample.busy_cost / total for endpoint, sample in latest.items()
        }


# ----------------------------------------------------------------------
# The coordinator-side aggregation hub
# ----------------------------------------------------------------------
class TelemetryHub:
    """Bounded in-memory event ring + timeseries + optional JSONL sink."""

    def __init__(self, spec: TelemetrySpec) -> None:
        self.spec = spec
        self.timeseries = TierTimeseries()
        self.windows = 0
        self.events_recorded = 0
        self._ring: Deque[TelemetryEvent] = deque(maxlen=max(1, spec.ring_size))
        self._t0 = time.monotonic()
        self._sink: Optional[IO[str]] = (
            open(spec.path, "w", encoding="utf-8") if spec.path else None
        )

    def now_ms(self) -> float:
        """Monotonic milliseconds since the hub opened (one run clock)."""
        return (time.monotonic() - self._t0) * 1000.0

    def record(self, event: TelemetryEvent) -> None:
        """Aggregate one event: ring, timeseries, JSONL sink."""
        self._ring.append(event)
        self.events_recorded += 1
        if isinstance(event, GaugeSample):
            self.timeseries.add(event)
        elif isinstance(event, WindowSpan):
            self.windows += 1
        if self._sink is not None:
            json.dump(encode_event(event), self._sink, sort_keys=True, allow_nan=False)
            self._sink.write("\n")

    def record_gauges(self, samples: Iterable[GaugeSample], seq: int) -> None:
        """Stamp drained samples with the window/barrier seq and record."""
        for sample in samples:
            self.record(replace(sample, seq=seq))

    def events(self) -> List[TelemetryEvent]:
        """The retained ring contents, oldest first (a copy)."""
        return list(self._ring)

    def telemetry_text(self) -> str:
        """Prometheus-style text exposition of the current state."""
        return telemetry_text(self)

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


def telemetry_text(hub: TelemetryHub) -> str:
    """Render a hub's live state in the Prometheus text format."""
    lines: List[str] = [
        "# TYPE repro_windows_total counter",
        "repro_windows_total %d" % hub.windows,
        "# TYPE repro_telemetry_events_total counter",
        "repro_telemetry_events_total %d" % hub.events_recorded,
    ]
    series = hub.timeseries
    gauges = (
        ("repro_tier_busy_cost", "Definition-1 busy cost", lambda s: "%g" % s.busy_cost),
        ("repro_tier_memory_bytes", "structure memory", lambda s: "%d" % s.memory_bytes),
        ("repro_tier_depth", "queue/structure depth", lambda s: "%d" % s.depth),
    )
    for name, help_text, render in gauges:
        lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s gauge" % name)
        for tier in series.tiers():
            for endpoint, sample in series.latest(tier).items():
                lines.append(
                    '%s{tier="%s",endpoint="%d"} %s' % (name, tier, endpoint, render(sample))
                )
    lines.append("# TYPE repro_tier_busy_fraction gauge")
    for tier in series.tiers():
        for endpoint, fraction in series.busy_fractions(tier).items():
            lines.append(
                'repro_tier_busy_fraction{tier="%s",endpoint="%d"} %g'
                % (tier, endpoint, fraction)
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Timeline rendering (the `repro report` subcommand)
# ----------------------------------------------------------------------
def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0.0:
        return ""
    return "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""


def render_timeline(events: Sequence[TelemetryEvent], *, width: int = 30) -> str:
    """Render a run's telemetry as a human-readable timeline.

    Three sections: the per-tier utilisation table (from the newest
    gauge samples), the window trace waterfall (route/match/merge bars
    scaled to the slowest hop of the run), and lifecycle annotations
    (adjustments, checkpoints, recoveries) interleaved by window seq.
    """
    spans = sorted(
        (e for e in events if isinstance(e, WindowSpan)), key=lambda s: s.seq
    )
    lifecycle = sorted(
        (e for e in events if isinstance(e, LifecycleEvent)), key=lambda e: (e.seq, e.at_ms)
    )
    series = TierTimeseries()
    for event in events:
        if isinstance(event, GaugeSample):
            series.add(event)

    lines: List[str] = ["== Per-tier utilisation =="]
    if series.tiers():
        lines.append(
            "%-12s %9s %12s %14s %10s %s"
            % ("tier", "endpoints", "busy_cost", "memory_bytes", "depth", "busy share")
        )
        for tier in series.tiers():
            latest = series.latest(tier)
            fractions = series.busy_fractions(tier)
            share = " ".join(
                "%d:%.0f%%" % (endpoint, 100.0 * fractions[endpoint])
                for endpoint in sorted(fractions)
            )
            lines.append(
                "%-12s %9d %12.2f %14d %10d %s"
                % (
                    tier,
                    len(latest),
                    sum(s.busy_cost for s in latest.values()),
                    sum(s.memory_bytes for s in latest.values()),
                    sum(s.depth for s in latest.values()),
                    share,
                )
            )
    else:
        lines.append("(no gauge samples)")

    lines.append("")
    lines.append("== Window trace waterfall ==")
    annotations: Dict[int, List[LifecycleEvent]] = {}
    for event in lifecycle:
        annotations.setdefault(event.seq, []).append(event)
    if spans:
        max_hop = max(
            (hop.elapsed_ms for span in spans for hop in span.hops), default=0.0
        )
        for span in spans:
            lines.append(
                "window %4d  tuples %5d..%-5d"
                % (span.seq, span.base, span.base + span.size - 1)
            )
            for hop in span.hops:
                lines.append(
                    "  %-6s %-10s %8.2fms |%s"
                    % (hop.stage, hop.tier, hop.elapsed_ms, _bar(hop.elapsed_ms, max_hop, width))
                )
            for event in annotations.pop(span.seq, ()):  # fired at this window
                lines.append("  ** %s" % _annotation(event))
    else:
        lines.append("(no window spans)")
    # Lifecycle events after the last span (e.g. a final checkpoint).
    for seq in sorted(annotations):
        for event in annotations[seq]:
            lines.append("** %s" % _annotation(event))
    return "\n".join(lines) + "\n"


def _annotation(event: LifecycleEvent) -> str:
    parts = [event.kind]
    if event.epoch >= 0:
        parts.append("epoch %d" % event.epoch)
    if event.endpoint_id >= 0:
        parts.append("%s %d" % (event.tier or "endpoint", event.endpoint_id))
    if event.detail:
        parts.append(event.detail)
    return " — ".join(parts) + " @ %.1fms" % event.at_ms


# ----------------------------------------------------------------------
# Prometheus-style HTTP exposition (`repro serve --telemetry-port`)
# ----------------------------------------------------------------------
class TelemetryServer:
    """A tiny threaded HTTP server exposing a text-format snapshot.

    ``render`` is called per request (so the page is always current);
    binds loopback only — telemetry is operational introspection, not a
    public surface.  ``port=0`` picks a free port (see :attr:`port`).
    """

    def __init__(self, render: Callable[[], str], port: int = 0) -> None:
        self._render = render

        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                body = server._render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-telemetry", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=10.0)
        self._httpd.server_close()
