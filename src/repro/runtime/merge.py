"""The sharded merger/delivery tier of the PS2Stream cluster.

The paper's topology is dispatchers → workers → **mergers** (Section
III-B): mergers deduplicate the matches of replicated queries and notify
subscribers.  Until this module existed the merger tier was an inline
loop the coordinator ran after every exchange — one more serial stage on
the coordinator, and every match result paid a worker→coordinator hop
before it could be deduplicated.  This module makes the tier real:

* results are partitioned across ``num_mergers`` merger **shards** by
  ``query_id % num_mergers`` — the exact assignment the inline loop
  already simulated, and one that is invariant under Section V
  migrations (a query keeps its merger wherever its cells move, so
  replicated matches keep meeting at the same shard);
* two backends mirror the worker transport and the dispatch stage:

  - :class:`InProcessMerge` — the reference.  :class:`MergerNode` shards
    live in the coordinator's interpreter and delivery is a direct call,
    byte-identical to the pre-subsystem inline loop.
  - :class:`MultiprocessMerge` — one OS process per merger shard.  Each
    shard owns an **inbox** (a ``multiprocessing.SimpleQueue``) carrying
    the data plane (:class:`~repro.runtime.transport.DeliverResults`)
    and the control plane (stats, period resets, adjustment fences, sink
    drains); replies come back on a per-shard pipe.  ``SimpleQueue.put``
    writes synchronously in the calling thread, so a control message
    enqueued after a delivery is guaranteed to be processed after it —
    the inbox ordering *is* the fence.

* in the full multiprocess deployment (multiprocess workers **and**
  multiprocess mergers) the worker hosts ship match results straight
  into the shard inboxes (:func:`repro.runtime.transport.make_result_shipper`)
  and reply to the coordinator with costs/counts only: dedup/delivery of
  window ``K`` overlaps matching of window ``K+1``, and the
  coordinator's result-hop counter (``Cluster.result_hops``) stays zero.

Delivered results feed a pluggable **subscriber sink** (one instance per
shard, built where the shard lives): ``null`` discards, ``memory``
buffers (drained over the control plane), ``jsonl`` appends one JSON
line per delivery to a per-shard file, ``callback`` invokes a picklable
callable.  Sink work is real I/O, deliberately outside the simulated
``RESULT_COST`` accounting, so attaching a sink never changes a report.

Reports are byte-identical across merger backends
(``tests/test_merge.py``): delivered/duplicate counts and busy cost are
multiset-invariant in the arrival order of a shard's results, and every
stat read is fenced through the inbox.  (The only order-sensitive state
is dedup-window *eviction*, which needs more than ``dedup_window``
distinct keys per shard to begin — far beyond any equivalence test.)
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.objects import MatchResult
from .merger import MergerNode
from .transport import (
    AdjustBarrier,
    BarrierAck,
    DeliverResults,
    MergerReset,
    MergerStats,
    MergerStatsRequest,
    RemoteError,
    Shutdown,
    SinkDrain,
    TransportError,
    ship_results,
)

__all__ = [
    "CallbackSink",
    "InProcessMerge",
    "JsonlSink",
    "MERGE_BACKENDS",
    "MemorySink",
    "MergeBackend",
    "MultiprocessMerge",
    "NullSink",
    "SINK_KINDS",
    "SinkSpec",
    "SubscriberSink",
    "build_sink",
    "make_merge",
]


# ----------------------------------------------------------------------
# Subscriber sinks
# ----------------------------------------------------------------------
class SubscriberSink:
    """Delivery endpoint of one merger shard (one instance per shard)."""

    kind = "abstract"

    def deliver(self, result: MatchResult) -> None:
        """Receive one deduplicated match result."""

    def drain(self) -> List[MatchResult]:
        """Return (and clear) the buffered deliveries, if the sink buffers."""
        return []

    def close(self) -> None:
        """Release sink resources (flushes/closes files)."""


class NullSink(SubscriberSink):
    """Discard deliveries (the default — delivery is pure accounting)."""

    kind = "null"


class MemorySink(SubscriberSink):
    """Buffer deliveries in memory; ``drain`` hands them out and clears."""

    kind = "memory"

    def __init__(self) -> None:
        self._delivered: List[MatchResult] = []

    def deliver(self, result: MatchResult) -> None:
        self._delivered.append(result)

    def drain(self) -> List[MatchResult]:
        delivered, self._delivered = self._delivered, []
        return delivered


class JsonlSink(SubscriberSink):
    """Append one JSON line per delivery to a per-shard file.

    Every shard writes its own file so multiprocess shards never
    interleave writes: a ``{merger}`` placeholder in the path is
    substituted with the shard id, otherwise ``.m<id>`` is appended.
    """

    kind = "jsonl"

    def __init__(self, path: str, merger_id: int) -> None:
        if "{merger}" in path:
            path = path.replace("{merger}", str(merger_id))
        else:
            path = "%s.m%d" % (path, merger_id)
        self.path = path
        self._handle = None

    def deliver(self, result: MatchResult) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(
                {
                    "query_id": result.query_id,
                    "object_id": result.object_id,
                    "subscriber_id": result.subscriber_id,
                    "worker_id": result.worker_id,
                },
                sort_keys=True,
            )
        )
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(SubscriberSink):
    """Invoke a callable per delivery.

    On the multiprocess backend the callable crosses a process boundary,
    so it must be picklable (a module-level function, not a closure) and
    runs *in the shard process* — use it for side effects there, or use
    the memory sink + ``drain_sinks`` to get deliveries back.
    """

    kind = "callback"

    def __init__(self, callback: Callable[[MatchResult], None]) -> None:
        self._callback = callback

    def deliver(self, result: MatchResult) -> None:
        self._callback(result)


#: The selectable sink kinds (``--sink`` on the CLI exposes the first three).
SINK_KINDS = ("null", "memory", "jsonl", "callback")


@dataclass(frozen=True)
class SinkSpec:
    """Picklable description of a sink, instantiated where the shard lives."""

    kind: str = "null"
    path: Optional[str] = None
    callback: Optional[Callable[[MatchResult], None]] = None

    def __post_init__(self) -> None:
        if self.kind not in SINK_KINDS:
            raise ValueError(
                "unknown sink kind %r (expected one of %s)"
                % (self.kind, ", ".join(SINK_KINDS))
            )
        if self.kind == "jsonl" and not self.path:
            raise ValueError("the jsonl sink needs a path")
        if self.kind == "callback" and self.callback is None:
            raise ValueError("the callback sink needs a callable")


def build_sink(spec: SinkSpec, merger_id: int) -> SubscriberSink:
    """Instantiate one shard's sink from its picklable spec."""
    if spec.kind == "null":
        return NullSink()
    if spec.kind == "memory":
        return MemorySink()
    if spec.kind == "jsonl":
        assert spec.path is not None
        return JsonlSink(spec.path, merger_id)
    assert spec.callback is not None
    return CallbackSink(spec.callback)


def _merger_stats(merger: MergerNode) -> MergerStats:
    return MergerStats(
        merger_id=merger.merger_id,
        busy_cost=merger.busy_cost,
        received=merger.received,
        delivered=merger.delivered,
        duplicates=merger.duplicates,
        memory_bytes=merger.memory_bytes(),
    )


# ----------------------------------------------------------------------
# Backend interface
# ----------------------------------------------------------------------
class MergeBackend:
    """Coordinator-side surface of the merger/delivery tier.

    The cluster drives it with ``deliver`` (coordinator-side delivery of
    results it received over the worker transport), ``merger_stats`` for
    the reports, ``barrier`` at adjustment fences, ``reset_period`` /
    ``drain_sinks`` and ``worker_endpoints`` — the per-shard inboxes
    handed to the multiprocess worker transport for direct shipping
    (``None`` when the tier lives in the coordinator's interpreter).
    """

    backend_name = "abstract"
    num_mergers: int = 0

    def deliver(self, results: Sequence[MatchResult]) -> None:
        """Partition ``results`` across the shards and deliver them."""
        raise NotImplementedError

    def merger_stats(self) -> Dict[int, MergerStats]:
        """One :class:`MergerStats` per shard, keyed (and merged) by
        ascending merger id so reports never depend on reply order."""
        raise NotImplementedError

    def merger_handles(self) -> List[Any]:
        """Per-shard handles: real :class:`MergerNode` objects in process,
        :class:`MergerStats` snapshots for remote shards — either exposes
        ``delivered`` / ``duplicates`` / ``busy_cost``."""
        raise NotImplementedError

    def worker_endpoints(self) -> Optional[Sequence[Any]]:
        """Shard inboxes for direct worker→merger shipping, or ``None``."""
        return None

    def barrier(self) -> int:
        """Fence every shard (all earlier deliveries processed)."""
        raise NotImplementedError

    def reset_period(self) -> None:
        """Start a new measurement period on every shard."""
        raise NotImplementedError

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        """Drain every shard's sink buffer, keyed by merger id."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (terminates merger processes)."""

    def __enter__(self) -> "MergeBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessMerge(MergeBackend):
    """Reference backend: merger shards in the coordinator's interpreter."""

    backend_name = "inprocess"

    def __init__(
        self,
        num_mergers: int,
        *,
        sink: Optional[SinkSpec] = None,
        dedup_window: int = 100_000,
    ) -> None:
        if num_mergers < 1:
            raise ValueError("the merger tier needs at least one shard")
        self.num_mergers = num_mergers
        spec = sink if sink is not None else SinkSpec()
        self.mergers: List[MergerNode] = [
            MergerNode(
                merger_id,
                dedup_window=dedup_window,
                sink=build_sink(spec, merger_id),
            )
            for merger_id in range(num_mergers)
        ]
        self._epoch = 0

    def deliver(self, results: Sequence[MatchResult]) -> None:
        ship_results(
            results,
            self.num_mergers,
            lambda merger_id, batch: self.mergers[merger_id].handle_many(batch),
        )

    def merger_stats(self) -> Dict[int, MergerStats]:
        return {merger.merger_id: _merger_stats(merger) for merger in self.mergers}

    def merger_handles(self) -> List[Any]:
        return list(self.mergers)

    def barrier(self) -> int:
        # Delivery is synchronous; the fence reduces to bumping the epoch.
        self._epoch += 1
        return self._epoch

    def reset_period(self) -> None:
        for merger in self.mergers:
            merger.reset_period()

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        return {merger.merger_id: merger.sink.drain() for merger in self.mergers}

    def close(self) -> None:
        for merger in self.mergers:
            merger.sink.close()


# ----------------------------------------------------------------------
# Multiprocess backend
# ----------------------------------------------------------------------
def _merge_host(
    merger_id: int,
    inbox: Any,
    reply_connection: Any,
    sink_spec: SinkSpec,
    dedup_window: int,
) -> None:
    """Entry point of one merger shard process: serve its inbox until Shutdown.

    Data-plane deliveries are fire-and-forget; control messages reply on
    the dedicated pipe.  Because the inbox is a single FIFO, a control
    reply proves every earlier delivery has been applied.
    """
    merger = MergerNode(
        merger_id, dedup_window=dedup_window, sink=build_sink(sink_spec, merger_id)
    )
    send = reply_connection.send
    # A data-plane failure cannot be reported inline — DeliverResults is
    # fire-and-forget, and an unsolicited reply would desynchronise the
    # request/reply pairing of every later control message.  The first
    # such error is parked here and answers the next control request.
    pending_error: Optional[RemoteError] = None
    while True:
        try:
            message = inbox.get()
        except (EOFError, OSError):
            break
        kind = type(message)
        if kind is DeliverResults:
            try:
                merger.handle_many(message.results)
            except Exception as exc:
                if pending_error is None:
                    pending_error = RemoteError(repr(exc), traceback.format_exc())
            continue
        if pending_error is not None and kind is not Shutdown:
            try:
                send(pending_error)
            except Exception:
                break
            pending_error = None
            continue
        try:
            if kind is MergerStatsRequest:
                send(_merger_stats(merger))
            elif kind is MergerReset:
                merger.reset_period()
                send(True)
            elif kind is SinkDrain:
                send(merger.sink.drain())
            elif kind is AdjustBarrier:
                # The shard is single-threaded and the inbox is FIFO:
                # every earlier delivery was applied, so acking is the fence.
                send(BarrierAck(message.epoch, merger_id))
            elif kind is Shutdown:
                merger.sink.close()
                send(True)
                break
            else:
                send(RemoteError("unknown merge message %r" % (message,), ""))
        except Exception as exc:  # pragma: no cover - exercised via coordinator
            try:
                send(RemoteError(repr(exc), traceback.format_exc()))
            except Exception:
                break
    try:
        reply_connection.close()
    except OSError:  # pragma: no cover - already torn down
        pass


class MultiprocessMerge(MergeBackend):
    """Each merger shard is a separate OS process fed through an inbox.

    The inbox (``SimpleQueue``) is shared by every producer — the
    coordinator and, in the full multiprocess deployment, the worker
    hosts shipping results directly.  ``SimpleQueue.put`` serialises and
    writes under the queue lock in the calling thread, so any message a
    producer enqueues *after* another producer's put has returned is
    dequeued after it: control requests the coordinator issues once an
    ``exchange`` has completed are guaranteed to observe every delivery
    that exchange produced.
    """

    backend_name = "multiprocess"

    def __init__(
        self,
        num_mergers: int,
        *,
        sink: Optional[SinkSpec] = None,
        dedup_window: int = 100_000,
        start_method: Optional[str] = None,
    ) -> None:
        if num_mergers < 1:
            raise ValueError("the merger tier needs at least one shard")
        self.num_mergers = num_mergers
        spec = sink if sink is not None else SinkSpec()
        context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else multiprocessing.get_context()
        )
        self._inboxes: List[Any] = []
        self._replies: Dict[int, Any] = {}
        self._processes: Dict[int, Any] = {}
        self._epoch = 0
        self._closed = False
        try:
            for merger_id in range(num_mergers):
                inbox = context.SimpleQueue()
                receive_end, send_end = context.Pipe(duplex=False)
                process = context.Process(
                    target=_merge_host,
                    args=(merger_id, inbox, send_end, spec, dedup_window),
                    name="repro-merger-%d" % merger_id,
                    daemon=True,
                )
                process.start()
                send_end.close()
                self._inboxes.append(inbox)
                self._replies[merger_id] = receive_end
                self._processes[merger_id] = process
        except Exception:
            self.close()
            raise

    # -- plumbing ------------------------------------------------------
    def _receive(self, merger_id: int) -> Any:
        try:
            reply = self._replies[merger_id].recv()
        except (EOFError, OSError) as exc:
            raise TransportError("merger shard %d died: %r" % (merger_id, exc)) from exc
        if isinstance(reply, RemoteError):
            raise TransportError(
                "merger shard %d failed: %s\n%s"
                % (merger_id, reply.message, reply.formatted_traceback)
            )
        return reply

    def _broadcast(self, message_factory) -> Dict[int, Any]:
        """Enqueue one control message per shard, then gather the replies.

        Replies are collected in ascending shard id — with each reply
        re-raised errors drain the remaining shards first — and the
        result dict is keyed by that same order, so downstream merges are
        deterministic regardless of which shard answered first.
        """
        for merger_id, inbox in enumerate(self._inboxes):
            inbox.put(message_factory(merger_id))
        replies: Dict[int, Any] = {}
        error: Optional[TransportError] = None
        for merger_id in range(self.num_mergers):
            try:
                replies[merger_id] = self._receive(merger_id)
            except TransportError as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return replies

    # -- MergeBackend surface ------------------------------------------
    def deliver(self, results: Sequence[MatchResult]) -> None:
        ship_results(
            results,
            self.num_mergers,
            lambda merger_id, batch: self._inboxes[merger_id].put(
                DeliverResults(tuple(batch))
            ),
        )

    def worker_endpoints(self) -> Optional[Sequence[Any]]:
        return tuple(self._inboxes)

    def merger_stats(self) -> Dict[int, MergerStats]:
        stats = self._broadcast(lambda merger_id: MergerStatsRequest())
        # Merged sorted by merger id (the same determinism rule the worker
        # tier applies to StatsReport).
        return {merger_id: stats[merger_id] for merger_id in sorted(stats)}

    def merger_handles(self) -> List[Any]:
        return list(self.merger_stats().values())

    def barrier(self) -> int:
        self._epoch += 1
        epoch = self._epoch
        acks = self._broadcast(lambda merger_id: AdjustBarrier(epoch))
        for merger_id, ack in acks.items():
            if not isinstance(ack, BarrierAck) or ack.epoch != epoch:
                raise TransportError(
                    "merger shard %d broke the adjustment fence: %r" % (merger_id, ack)
                )
        return epoch

    def reset_period(self) -> None:
        self._broadcast(lambda merger_id: MergerReset())

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        drained = self._broadcast(lambda merger_id: SinkDrain())
        return {merger_id: drained[merger_id] for merger_id in sorted(drained)}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for merger_id, inbox in enumerate(self._inboxes):
            connection = self._replies.get(merger_id)
            try:
                inbox.put(Shutdown())
                if connection is not None:
                    connection.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        for connection in self._replies.values():
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: Registry of the selectable merger backends (``--merger-backend``).
MERGE_BACKENDS = ("inprocess", "multiprocess")


def make_merge(
    backend: str,
    num_mergers: int,
    *,
    sink: Optional[SinkSpec] = None,
    dedup_window: int = 100_000,
) -> MergeBackend:
    """Build the merger/delivery backend for a cluster deployment."""
    if backend == "inprocess":
        return InProcessMerge(num_mergers, sink=sink, dedup_window=dedup_window)
    if backend == "multiprocess":
        return MultiprocessMerge(num_mergers, sink=sink, dedup_window=dedup_window)
    raise ValueError(
        "unknown merger backend %r (expected one of %s)"
        % (backend, ", ".join(MERGE_BACKENDS))
    )
