"""The sharded merger/delivery tier of the PS2Stream cluster.

The paper's topology is dispatchers → workers → **mergers** (Section
III-B): mergers deduplicate the matches of replicated queries and notify
subscribers.  Until this module existed the merger tier was an inline
loop the coordinator ran after every exchange — one more serial stage on
the coordinator, and every match result paid a worker→coordinator hop
before it could be deduplicated.  This module makes the tier real:

* results are partitioned across ``num_mergers`` merger **shards** by
  ``query_id % num_mergers`` — the exact assignment the inline loop
  already simulated, and one that is invariant under Section V
  migrations (a query keeps its merger wherever its cells move, so
  replicated matches keep meeting at the same shard);
* backends mirror the worker transport and the dispatch stage:

  - :class:`InProcessMerge` — the reference.  :class:`MergerNode` shards
    live in the coordinator's interpreter and delivery is a direct call,
    byte-identical to the pre-subsystem inline loop.
  - :class:`FabricMerge` — one fabric endpoint per merger shard
    (:mod:`repro.runtime.fabric`).  In the ``multiprocess`` deployment
    each shard owns an **inbox** (a ``multiprocessing.SimpleQueue``)
    carrying the data plane
    (:class:`~repro.runtime.transport.DeliverResults`) and the control
    plane (stats, period resets, adjustment fences, sink drains), with
    replies on a per-shard pipe; ``SimpleQueue.put`` writes synchronously
    in the calling thread, so a control message enqueued after a delivery
    is guaranteed to be processed after it — the inbox ordering *is* the
    fence.  In the ``socket`` deployment each shard is a ``repro serve
    --role merger`` endpoint over one TCP connection, which is equally
    FIFO — the same fence argument holds because the coordinator is the
    connection's only producer.

* in the full multiprocess deployment (multiprocess workers **and**
  multiprocess mergers) the worker hosts ship match results straight
  into the shard inboxes (:func:`repro.runtime.transport.make_result_shipper`)
  and reply to the coordinator with costs/counts only: dedup/delivery of
  window ``K`` overlaps matching of window ``K+1``, and the
  coordinator's result-hop counter (``Cluster.result_hops``) stays zero.
  (The socket deployment routes results through the coordinator instead:
  TCP gives no ordering across *different* connections, so direct
  worker→merger shipping would need a distributed fence — future work.)

Delivered results feed a pluggable **subscriber sink** (one instance per
shard, built where the shard lives): ``null`` discards, ``memory``
buffers (drained over the control plane), ``jsonl`` appends one JSON
line per delivery to a per-shard file, ``callback`` invokes a picklable
callable.  Sink work is real I/O, deliberately outside the simulated
``RESULT_COST`` accounting, so attaching a sink never changes a report.

Reports are byte-identical across merger backends
(``tests/test_merge.py``): delivered/duplicate counts and busy cost are
multiset-invariant in the arrival order of a shard's results, and every
stat read is fenced through the inbox.  (The only order-sensitive state
is dedup-window *eviction*, which needs more than ``dedup_window``
distinct keys per shard to begin — far beyond any equivalence test.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.objects import MatchResult
from .fabric import (
    Fleet,
    RoleHost,
    TransportError,
    assign_addresses,
    connect_fleet,
    register_role,
    spawn_fleet,
    spawn_socket_fleet,
)
from .merger import MergerNode
from .profiling import DedupProfile, ProfileDrain
from .telemetry import GaugeSample, TelemetryBatch, TelemetryDrain
from .transport import (
    DeliverResults,
    MergerReset,
    MergerStats,
    MergerStatsRequest,
    SinkDrain,
    ship_results,
)

__all__ = [
    "CallbackSink",
    "FabricMerge",
    "InProcessMerge",
    "JsonlSink",
    "MERGE_BACKENDS",
    "MemorySink",
    "MergeBackend",
    "MergeHost",
    "MultiprocessMerge",
    "NullSink",
    "SINK_KINDS",
    "SinkSpec",
    "SubscriberSink",
    "build_sink",
    "make_merge",
]


# ----------------------------------------------------------------------
# Subscriber sinks
# ----------------------------------------------------------------------
class SubscriberSink:
    """Delivery endpoint of one merger shard (one instance per shard)."""

    kind = "abstract"

    def deliver(self, result: MatchResult) -> None:
        """Receive one deduplicated match result."""

    def drain(self) -> List[MatchResult]:
        """Return (and clear) the buffered deliveries, if the sink buffers."""
        return []

    def close(self) -> None:
        """Release sink resources (flushes/closes files)."""


class NullSink(SubscriberSink):
    """Discard deliveries (the default — delivery is pure accounting)."""

    kind = "null"


class MemorySink(SubscriberSink):
    """Buffer deliveries in memory; ``drain`` hands them out and clears."""

    kind = "memory"

    def __init__(self) -> None:
        self._delivered: List[MatchResult] = []

    def deliver(self, result: MatchResult) -> None:
        self._delivered.append(result)

    def drain(self) -> List[MatchResult]:
        delivered, self._delivered = self._delivered, []
        return delivered


class JsonlSink(SubscriberSink):
    """Append one JSON line per delivery to a per-shard file.

    Every shard writes its own file so out-of-process shards never
    interleave writes: a ``{merger}`` placeholder in the path is
    substituted with the shard id, otherwise ``.m<id>`` is appended.
    """

    kind = "jsonl"

    def __init__(self, path: str, merger_id: int) -> None:
        if "{merger}" in path:
            path = path.replace("{merger}", str(merger_id))
        else:
            path = "%s.m%d" % (path, merger_id)
        self.path = path
        self._handle = None

    def deliver(self, result: MatchResult) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(
            json.dumps(
                {
                    "query_id": result.query_id,
                    "object_id": result.object_id,
                    "subscriber_id": result.subscriber_id,
                    "worker_id": result.worker_id,
                },
                sort_keys=True,
            )
        )
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(SubscriberSink):
    """Invoke a callable per delivery.

    On the out-of-process backends the callable crosses a process
    boundary, so it must be picklable (a module-level function, not a
    closure) and runs *in the shard process* — use it for side effects
    there, or use the memory sink + ``drain_sinks`` to get deliveries
    back.
    """

    kind = "callback"

    def __init__(self, callback: Callable[[MatchResult], None]) -> None:
        self._callback = callback

    def deliver(self, result: MatchResult) -> None:
        self._callback(result)


#: The selectable sink kinds (``--sink`` on the CLI exposes the first three).
SINK_KINDS = ("null", "memory", "jsonl", "callback")


@dataclass(frozen=True)
class SinkSpec:
    """Picklable description of a sink, instantiated where the shard lives."""

    kind: str = "null"
    path: Optional[str] = None
    # The callback sink is documented to require a picklable module-level
    # callable (tests ship one across process boundaries); the Callable
    # annotation itself is wire-legal under that contract.
    callback: Optional[Callable[[MatchResult], None]] = None  # repro-lint: disable=RL003

    def __post_init__(self) -> None:
        if self.kind not in SINK_KINDS:
            raise ValueError(
                "unknown sink kind %r (expected one of %s)"
                % (self.kind, ", ".join(SINK_KINDS))
            )
        if self.kind == "jsonl" and not self.path:
            raise ValueError("the jsonl sink needs a path")
        if self.kind == "callback" and self.callback is None:
            raise ValueError("the callback sink needs a callable")


def build_sink(spec: SinkSpec, merger_id: int) -> SubscriberSink:
    """Instantiate one shard's sink from its picklable spec."""
    if spec.kind == "null":
        return NullSink()
    if spec.kind == "memory":
        return MemorySink()
    if spec.kind == "jsonl":
        assert spec.path is not None
        return JsonlSink(spec.path, merger_id)
    assert spec.callback is not None
    return CallbackSink(spec.callback)


def _merger_stats(merger: MergerNode) -> MergerStats:
    return MergerStats(
        merger_id=merger.merger_id,
        busy_cost=merger.busy_cost,
        received=merger.received,
        delivered=merger.delivered,
        duplicates=merger.duplicates,
        memory_bytes=merger.memory_bytes(),
    )


def _merger_profile(merger: MergerNode) -> Tuple[DedupProfile, ...]:
    """The shard's profile events — empty when profiling is off."""
    counters = merger.profile
    if counters is None:
        return ()
    return (counters.event(merger.merger_id),)


def _merger_gauge(merger: MergerNode) -> GaugeSample:
    """One telemetry gauge sample from live merger state (read-only).

    ``depth`` is the live dedup-window population — the bounded state a
    future merger re-shard would hand off (droppable: at worst
    duplicates, never losses).
    """
    return GaugeSample(
        tier="merger",
        endpoint_id=merger.merger_id,
        busy_cost=merger.busy_cost,
        memory_bytes=merger.memory_bytes(),
        depth=merger.dedup_population(),
    )


# ----------------------------------------------------------------------
# Backend interface
# ----------------------------------------------------------------------
class MergeBackend:
    """Coordinator-side surface of the merger/delivery tier.

    The cluster drives it with ``deliver`` (coordinator-side delivery of
    results it received over the worker transport), ``merger_stats`` for
    the reports, ``barrier`` at adjustment fences, ``reset_period`` /
    ``drain_sinks`` and ``worker_endpoints`` — the per-shard inboxes
    handed to the multiprocess worker transport for direct shipping
    (``None`` when the tier lives in the coordinator's interpreter or
    behind TCP).
    """

    backend_name = "abstract"
    num_mergers: int = 0

    def deliver(self, results: Sequence[MatchResult]) -> None:
        """Partition ``results`` across the shards and deliver them."""
        raise NotImplementedError

    def merger_stats(self) -> Dict[int, MergerStats]:
        """One :class:`MergerStats` per shard, keyed (and merged) by
        ascending merger id so reports never depend on reply order."""
        raise NotImplementedError

    def merger_handles(self) -> List[Any]:
        """Per-shard handles: real :class:`MergerNode` objects in process,
        :class:`MergerStats` snapshots for remote shards — either exposes
        ``delivered`` / ``duplicates`` / ``busy_cost``."""
        raise NotImplementedError

    def worker_endpoints(self) -> Optional[Sequence[Any]]:
        """Shard inboxes for direct worker→merger shipping, or ``None``."""
        return None

    def barrier(self) -> int:
        """Fence every shard (all earlier deliveries processed)."""
        raise NotImplementedError

    def reset_period(self) -> None:
        """Start a new measurement period on every shard."""
        raise NotImplementedError

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        """Drain every shard's sink buffer, keyed by merger id."""
        raise NotImplementedError

    def install_fault_plan(self, faults: Sequence[Any]) -> None:
        """Arm injected faults on this backend's send path (chaos tests).

        The in-process reference has no transport to fault; default no-op.
        """

    def drain_telemetry(self) -> List[GaugeSample]:
        """One gauge sample per merger shard, in ascending shard order.

        Read-only: draining never touches the busy/delivered counters
        reports derive from (the telemetry invariant).
        """
        raise NotImplementedError

    def drain_profile(self) -> List[DedupProfile]:
        """One profile event per profiling shard, ascending shard order.

        Empty when profiling is off; read-only like telemetry.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (terminates merger processes)."""

    def __enter__(self) -> "MergeBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InProcessMerge(MergeBackend):
    """Reference backend: merger shards in the coordinator's interpreter."""

    backend_name = "inprocess"

    def __init__(
        self,
        num_mergers: int,
        *,
        sink: Optional[SinkSpec] = None,
        dedup_window: int = 100_000,
        profiling: bool = False,
    ) -> None:
        if num_mergers < 1:
            raise ValueError("the merger tier needs at least one shard")
        self.num_mergers = num_mergers
        spec = sink if sink is not None else SinkSpec()
        self.mergers: List[MergerNode] = [
            MergerNode(
                merger_id,
                dedup_window=dedup_window,
                sink=build_sink(spec, merger_id),
                profiling=profiling,
            )
            for merger_id in range(num_mergers)
        ]
        self._epoch = 0

    def deliver(self, results: Sequence[MatchResult]) -> None:
        ship_results(
            results,
            self.num_mergers,
            lambda merger_id, batch: self.mergers[merger_id].handle_many(batch),
        )

    def merger_stats(self) -> Dict[int, MergerStats]:
        return {merger.merger_id: _merger_stats(merger) for merger in self.mergers}

    def merger_handles(self) -> List[Any]:
        return list(self.mergers)

    def barrier(self) -> int:
        # Delivery is synchronous; the fence reduces to bumping the epoch.
        self._epoch += 1
        return self._epoch

    def reset_period(self) -> None:
        for merger in self.mergers:
            merger.reset_period()

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        return {merger.merger_id: merger.sink.drain() for merger in self.mergers}

    def drain_telemetry(self) -> List[GaugeSample]:
        return [_merger_gauge(merger) for merger in self.mergers]

    def drain_profile(self) -> List[DedupProfile]:
        return [
            event for merger in self.mergers for event in _merger_profile(merger)
        ]

    def close(self) -> None:
        for merger in self.mergers:
            merger.sink.close()


# ----------------------------------------------------------------------
# The merger role host (served by the fabric's generic serve loop)
# ----------------------------------------------------------------------
class MergeHost(RoleHost):
    """One merger-shard endpoint: a :class:`MergerNode` behind the typed
    surface.  ``init`` carries the picklable ``sink`` spec and the
    ``dedup_window``; :class:`DeliverResults` is the fire-and-forget data
    plane — the fabric parks a delivery failure and reports it on the
    next control request (an unsolicited reply would desynchronise the
    request/reply pairing)."""

    fire_and_forget = (DeliverResults,)

    def __init__(self, merger_id: int, init: Mapping[str, Any]) -> None:
        spec = init.get("sink") or SinkSpec()
        self.merger = MergerNode(
            merger_id,
            dedup_window=init.get("dedup_window", 100_000),
            sink=build_sink(spec, merger_id),
            profiling=bool(init.get("profiling")),
        )

    def handle(self, message: Any) -> Any:
        kind = type(message)
        merger = self.merger
        if kind is DeliverResults:
            merger.handle_many(message.results)
            return None
        if kind is MergerStatsRequest:
            return _merger_stats(merger)
        if kind is MergerReset:
            merger.reset_period()
            return True
        if kind is SinkDrain:
            return merger.sink.drain()
        if kind is TelemetryDrain:
            return TelemetryBatch(merger.merger_id, (_merger_gauge(merger),))
        if kind is ProfileDrain:
            return TelemetryBatch(merger.merger_id, _merger_profile(merger))
        raise TransportError("unknown merge message %r" % (message,))

    def close(self) -> None:
        self.merger.sink.close()


register_role("merger", MergeHost)


# ----------------------------------------------------------------------
# Fabric-backed merger tier (multiprocess and socket deployments)
# ----------------------------------------------------------------------
class FabricMerge(MergeBackend):
    """Each merger shard is a fabric endpoint fed through a FIFO channel.

    In the multiprocess deployment the channel's send side is the shard's
    ``SimpleQueue`` inbox — shared by every producer, i.e. the
    coordinator and, in the full multiprocess deployment, the worker
    hosts shipping results directly.  ``SimpleQueue.put`` serialises and
    writes under the queue lock in the calling thread, so any message a
    producer enqueues *after* another producer's put has returned is
    dequeued after it: control requests the coordinator issues once an
    ``exchange`` has completed are guaranteed to observe every delivery
    that exchange produced.  In the socket deployment the channel is one
    TCP connection with the coordinator as sole producer; per-connection
    FIFO gives the identical fence.
    """

    def __init__(self, fleet: Fleet) -> None:
        self._fleet = fleet
        self.backend_name = fleet.backend_name
        self.num_mergers = len(fleet.endpoint_ids)

    # -- MergeBackend surface ------------------------------------------
    def deliver(self, results: Sequence[MatchResult]) -> None:
        ship_results(
            results,
            self.num_mergers,
            lambda merger_id, batch: self._fleet.send(
                merger_id, DeliverResults(tuple(batch))
            ),
        )

    def worker_endpoints(self) -> Optional[Sequence[Any]]:
        return self._fleet.data_endpoints()

    def merger_stats(self) -> Dict[int, MergerStats]:
        stats = self._fleet.broadcast(MergerStatsRequest())
        # Merged sorted by merger id (the same determinism rule the worker
        # tier applies to StatsReport).
        return {merger_id: stats[merger_id] for merger_id in sorted(stats)}

    def merger_handles(self) -> List[Any]:
        return list(self.merger_stats().values())

    def barrier(self) -> int:
        return self._fleet.barrier()

    def reset_period(self) -> None:
        self._fleet.broadcast(MergerReset())

    def drain_sinks(self) -> Dict[int, List[MatchResult]]:
        drained = self._fleet.broadcast(SinkDrain())
        return {merger_id: drained[merger_id] for merger_id in sorted(drained)}

    def drain_telemetry(self) -> List[GaugeSample]:
        batches = self._fleet.broadcast(TelemetryDrain())
        return [
            sample
            for merger_id in sorted(batches)
            for sample in batches[merger_id].events
        ]

    def drain_profile(self) -> List[DedupProfile]:
        batches = self._fleet.broadcast(ProfileDrain())
        return [
            event
            for merger_id in sorted(batches)
            for event in batches[merger_id].events
        ]

    def install_fault_plan(self, faults: Sequence[Any]) -> None:
        self._fleet.install_fault_plan(faults)

    def close(self) -> None:
        self._fleet.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: Backwards-compatible name: the process-per-shard deployment is a
#: FabricMerge whose fleet was spawned locally.
MultiprocessMerge = FabricMerge


#: Registry of the selectable merger backends (``--merger-backend``).
MERGE_BACKENDS = ("inprocess", "multiprocess", "socket")


def make_merge(
    backend: str,
    num_mergers: int,
    *,
    sink: Optional[SinkSpec] = None,
    dedup_window: int = 100_000,
    addresses: Optional[Sequence[Tuple[str, int]]] = None,
    profiling: bool = False,
) -> MergeBackend:
    """Build the merger/delivery backend for a cluster deployment.

    ``addresses`` (socket backend only) lists the ``repro serve --role
    merger`` endpoints from the cluster manifest; without it the
    coordinator spawns loopback serve processes.
    """
    if backend == "inprocess":
        return InProcessMerge(
            num_mergers, sink=sink, dedup_window=dedup_window, profiling=profiling
        )
    if backend not in ("multiprocess", "socket"):
        raise ValueError(
            "unknown merger backend %r (expected one of %s)"
            % (backend, ", ".join(MERGE_BACKENDS))
        )
    if num_mergers < 1:
        raise ValueError("the merger tier needs at least one shard")
    merger_ids = list(range(num_mergers))
    inits = {
        merger_id: {
            "sink": sink,
            "dedup_window": dedup_window,
            "profiling": profiling,
        }
        for merger_id in merger_ids
    }
    if backend == "multiprocess":
        fleet = spawn_fleet("merger", inits, label="merger shard", queue_inbox=True)
    elif addresses:
        endpoint_map = assign_addresses(addresses, merger_ids, "merger")
        fleet = connect_fleet("merger", endpoint_map, inits, label="merger shard")
    else:
        fleet = spawn_socket_fleet("merger", inits, label="merger shard")
    return FabricMerge(fleet)
