"""Worker checkpoint/recovery state (the fault-tolerance subsystem).

A worker owns one partition of the ``(cell, posting keyword)`` assignment
space; until this module existed, a dead worker only had its replies
drained and its partition was simply lost.  Checkpointing reuses the
exact state the Section V migration protocol already serializes: at each
adjustment-barrier quiescent point (and on a standalone checkpoint
cadence), every worker exports its live
:class:`~repro.runtime.worker.QueryAssignment` list — the same unit
``extract_cells`` ships during a migration — and the coordinator records
the full per-worker map as a :class:`Checkpoint` in a
:class:`CheckpointStore` (in-memory ring, optionally mirrored to JSONL).

On endpoint death (pipe EOF, socket reset or
:class:`~repro.runtime.fabric.FrameTruncated`), the coordinator restores
the dead worker's partition from the latest checkpoint onto a surviving
worker via ``install_queries``, replays the routing-table updates shipped
since that checkpoint, remaps every routing cell that referenced the dead
worker, and resumes — losing at most the one in-flight window, which is
accounted in :class:`RecoveryReport` (surfaced as ``RunReport.recovery``).

Wire footprint: :class:`SnapshotAssignments` (coordinator→worker request)
and :class:`WorkerSnapshot` (its reply) are registered in
:mod:`repro.runtime.protocol`; everything else here is coordinator-side
state that never crosses a process boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.expression import BooleanExpression
from ..core.geometry import Rect
from ..core.objects import STSQuery
from .worker import QueryAssignment

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "RecoveryEvent",
    "RecoveryReport",
    "SnapshotAssignments",
    "WorkerSnapshot",
    "decode_checkpoint",
    "encode_checkpoint",
]


@dataclass(slots=True)
class SnapshotAssignments:
    """Coordinator→worker: export your live query assignments."""


@dataclass(slots=True)
class WorkerSnapshot:
    """Worker→coordinator reply: one worker's full assignment partition."""

    worker_id: int
    assignments: Tuple[QueryAssignment, ...]


@dataclass(frozen=True)
class Checkpoint:
    """One quiescent-point snapshot of every worker's partition.

    ``epoch`` is the store's own monotonic counter (not the fabric's
    barrier epoch, which differs across backends); ``tuples_processed``
    anchors the checkpoint in the stream so recovery can bound the loss
    window it reports.
    """

    epoch: int
    tuples_processed: int
    assignments: Mapping[int, Tuple[QueryAssignment, ...]]


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovered worker death, as accounted in ``RunReport.recovery``.

    ``lost_object_ids`` / ``lost_query_ids`` identify the in-flight
    window's tuples whose effects may be partially applied: the
    convergence contract is delivered-results equality with the
    single-process reference *after excluding results involving them*.
    """

    worker_id: int
    target_worker: int
    epoch: int
    queries_reinstalled: int
    updates_replayed: int
    cells_remapped: int
    lost_tuples: int
    lost_object_ids: Tuple[int, ...] = ()
    lost_query_ids: Tuple[int, ...] = ()
    during_adjustment: bool = False


@dataclass(frozen=True)
class RecoveryReport:
    """The checkpoint/recovery section of a run report.

    Present on every checkpointed run; ``events`` is empty when nothing
    died, so fault-free checkpointed runs stay byte-identical across
    backends.
    """

    checkpoints_taken: int = 0
    events: Tuple[RecoveryEvent, ...] = ()

    @property
    def lost_tuples(self) -> int:
        """Total in-flight tuples lost across all recoveries."""
        return sum(event.lost_tuples for event in self.events)


# ----------------------------------------------------------------------
# JSONL codec (field-level, so checkpoints survive process restarts
# without depending on pickle compatibility across versions)
# ----------------------------------------------------------------------
def _encode_query(query: STSQuery) -> Dict[str, Any]:
    return {
        "query_id": query.query_id,
        "clauses": [sorted(clause) for clause in query.expression.clauses],
        "region": [
            query.region.min_x,
            query.region.min_y,
            query.region.max_x,
            query.region.max_y,
        ],
        "subscriber_id": query.subscriber_id,
        "timestamp": query.timestamp,
    }


def _decode_query(raw: Mapping[str, Any]) -> STSQuery:
    min_x, min_y, max_x, max_y = raw["region"]
    return STSQuery(
        query_id=raw["query_id"],
        expression=BooleanExpression.from_clauses(raw["clauses"]),
        region=Rect(min_x, min_y, max_x, max_y),
        subscriber_id=raw["subscriber_id"],
        timestamp=raw["timestamp"],
    )


def _encode_assignment(assignment: QueryAssignment) -> List[Any]:
    return [
        _encode_query(assignment.query),
        [[coord[0], coord[1], key] for coord, key in assignment.pairs],
        assignment.moved,
    ]


def _decode_assignment(raw: Sequence[Any]) -> QueryAssignment:
    query_raw, pairs_raw, moved = raw
    return QueryAssignment(
        query=_decode_query(query_raw),
        pairs=tuple(((column, row), key) for column, row, key in pairs_raw),
        moved=moved,
    )


def encode_checkpoint(checkpoint: Checkpoint) -> str:
    """One checkpoint as one JSON line (the JSONL record format)."""
    return json.dumps(
        {
            "epoch": checkpoint.epoch,
            "tuples_processed": checkpoint.tuples_processed,
            "assignments": {
                str(worker_id): [
                    _encode_assignment(assignment)
                    for assignment in checkpoint.assignments[worker_id]
                ]
                for worker_id in sorted(checkpoint.assignments)
            },
        },
        separators=(",", ":"),
    )


def decode_checkpoint(line: str) -> Checkpoint:
    """Parse one JSONL record back into a :class:`Checkpoint`."""
    raw = json.loads(line)
    return Checkpoint(
        epoch=raw["epoch"],
        tuples_processed=raw["tuples_processed"],
        assignments={
            int(worker_id): tuple(_decode_assignment(entry) for entry in entries)
            for worker_id, entries in raw["assignments"].items()
        },
    )


class CheckpointStore:
    """Bounded in-memory checkpoint ring, optionally mirrored to JSONL.

    ``record`` assigns each checkpoint the store's next epoch and keeps
    the most recent ``keep`` snapshots in memory (recovery only ever
    needs the latest; the ring exists so tests can inspect history).
    With ``path`` set, every checkpoint is also appended as one JSON
    line — the durable form :meth:`load` reads back.
    """

    def __init__(self, path: Optional[str] = None, keep: int = 4) -> None:
        self.path = path
        self.keep = max(1, keep)
        self._checkpoints: List[Checkpoint] = []
        self._taken = 0
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8"):
                pass  # a fresh run starts a fresh log

    @property
    def checkpoints_taken(self) -> int:
        """Total checkpoints recorded over the store's lifetime."""
        return self._taken

    def __len__(self) -> int:
        return len(self._checkpoints)

    def record(
        self,
        assignments: Mapping[int, Sequence[QueryAssignment]],
        tuples_processed: int,
    ) -> Checkpoint:
        """Record one quiescent-point snapshot; returns the checkpoint."""
        self._taken += 1
        checkpoint = Checkpoint(
            epoch=self._taken,
            tuples_processed=tuples_processed,
            assignments={
                worker_id: tuple(assignments[worker_id])
                for worker_id in sorted(assignments)
            },
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.keep:
            del self._checkpoints[: len(self._checkpoints) - self.keep]
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(encode_checkpoint(checkpoint) + "\n")
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint, or ``None`` before the first one."""
        if not self._checkpoints:
            return None
        return self._checkpoints[-1]

    @classmethod
    def load(cls, path: str) -> List[Checkpoint]:
        """Read every checkpoint from a JSONL log (restore/inspection)."""
        checkpoints: List[Checkpoint] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    checkpoints.append(decode_checkpoint(line))
        return checkpoints
