"""The simulated PS2Stream cluster runtime (paper Section III-B).

Substitute for the paper's Storm-on-EC2 deployment: dispatchers route the
tuple stream through the gridt index, workers match objects against their
GI2 indexes, mergers deduplicate results, and the cost model converts the
executed work into throughput, latency and memory reports.  The
dispatcher→worker→merger communication is an explicit typed-message
transport (:mod:`repro.runtime.transport`) with two backends: the
in-process reference and a multiprocess backend that hosts each worker in
its own OS process (``ClusterConfig.backend`` / ``--backend`` on the CLI).
Routing itself scales the same way through the sharded dispatch stage
(:mod:`repro.runtime.dispatch`, ``ClusterConfig.dispatch_backend`` /
``--dispatch-backend``): each dispatcher shard routes its slice of the
stream on its own replica of the routing index, off the coordinator.
See docs/ARCHITECTURE.md for the dataflow walkthrough.
"""

from .cluster import Cluster, ClusterConfig, MigrationRecord, PeriodSampleCollector
from .dispatch import (
    DISPATCH_BACKENDS,
    DispatchBackend,
    InProcessDispatch,
    MultiprocessDispatch,
    make_dispatch,
)
from .dispatcher import DispatcherNode, RoutingDecision
from .merge import (
    InProcessMerge,
    MERGE_BACKENDS,
    MergeBackend,
    MultiprocessMerge,
    SINK_KINDS,
    SinkSpec,
    SubscriberSink,
    build_sink,
    make_merge,
)
from .merger import MergerNode
from .metrics import LatencyBuckets, LatencyTracker, RunReport, utilization_latency
from .transport import (
    InProcessTransport,
    MergerStats,
    MultiprocessTransport,
    StatsReport,
    Transport,
    TransportError,
    TRANSPORT_BACKENDS,
    make_transport,
)
from .worker import QueryAssignment, WorkerNode

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DISPATCH_BACKENDS",
    "DispatchBackend",
    "DispatcherNode",
    "InProcessDispatch",
    "InProcessMerge",
    "InProcessTransport",
    "MERGE_BACKENDS",
    "MergeBackend",
    "MultiprocessDispatch",
    "MultiprocessMerge",
    "make_dispatch",
    "make_merge",
    "LatencyBuckets",
    "LatencyTracker",
    "MergerNode",
    "MergerStats",
    "MigrationRecord",
    "MultiprocessTransport",
    "SINK_KINDS",
    "SinkSpec",
    "SubscriberSink",
    "build_sink",
    "PeriodSampleCollector",
    "QueryAssignment",
    "RoutingDecision",
    "RunReport",
    "StatsReport",
    "Transport",
    "TransportError",
    "TRANSPORT_BACKENDS",
    "WorkerNode",
    "utilization_latency",
]
