"""The simulated PS2Stream cluster runtime.

Substitute for the paper's Storm-on-EC2 deployment: dispatchers route the
tuple stream through the gridt index, workers match objects against their
GI2 indexes, mergers deduplicate results, and the cost model converts the
executed work into throughput, latency and memory reports.
"""

from .cluster import Cluster, ClusterConfig, MigrationRecord, PeriodSampleCollector
from .dispatcher import DispatcherNode, RoutingDecision
from .merger import MergerNode
from .metrics import LatencyBuckets, LatencyTracker, RunReport, utilization_latency
from .worker import QueryAssignment, WorkerNode

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DispatcherNode",
    "LatencyBuckets",
    "LatencyTracker",
    "MergerNode",
    "MigrationRecord",
    "PeriodSampleCollector",
    "QueryAssignment",
    "RoutingDecision",
    "RunReport",
    "WorkerNode",
    "utilization_latency",
]
