"""The simulated PS2Stream cluster runtime (paper Section III-B).

Substitute for the paper's Storm-on-EC2 deployment: dispatchers route the
tuple stream through the gridt index, workers match objects against their
GI2 indexes, mergers deduplicate results, and the cost model converts the
executed work into throughput, latency and memory reports.  The
dispatcher→worker→merger communication is an explicit typed-message
transport (:mod:`repro.runtime.transport`) layered on the role-based
runtime fabric (:mod:`repro.runtime.fabric`), with three backends: the
in-process reference, a multiprocess backend that hosts each worker in
its own OS process, and a socket backend that reaches ``repro serve``
endpoints over TCP (``ClusterConfig.backend`` / ``--backend`` on the
CLI).  Routing itself scales the same way through the sharded dispatch
stage (:mod:`repro.runtime.dispatch`, ``ClusterConfig.dispatch_backend``
/ ``--dispatch-backend``): each dispatcher shard routes its slice of the
stream on its own replica of the routing index, off the coordinator.
See docs/ARCHITECTURE.md for the dataflow walkthrough.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    RecoveryEvent,
    RecoveryReport,
    SnapshotAssignments,
    WorkerSnapshot,
    decode_checkpoint,
    encode_checkpoint,
)
from .cluster import Cluster, ClusterConfig, MigrationRecord, PeriodSampleCollector
from .dispatch import (
    DISPATCH_BACKENDS,
    DispatchBackend,
    DispatchHost,
    FabricDispatch,
    InProcessDispatch,
    MultiprocessDispatch,
    make_dispatch,
)
from .dispatcher import DispatcherNode, RoutingDecision
from .fabric import (
    Channel,
    ClusterManifest,
    FaultPlan,
    FaultSpec,
    Fleet,
    FrameTruncated,
    RoleHost,
    load_manifest,
    parse_address,
    parse_fault_plan,
    register_role,
    resolve_role,
    serve,
    serve_loop,
)
from .merge import (
    FabricMerge,
    InProcessMerge,
    MERGE_BACKENDS,
    MergeBackend,
    MergeHost,
    MultiprocessMerge,
    SINK_KINDS,
    SinkSpec,
    SubscriberSink,
    build_sink,
    make_merge,
)
from .merger import MergerNode
from .metrics import LatencyBuckets, LatencyTracker, RunReport, utilization_latency
from .profiling import (
    DedupProfile,
    MatchProfile,
    ProfileReport,
    ProfilingSpec,
    RouteProfile,
    StackSampler,
    profile_text,
)
from .telemetry import (
    GaugeSample,
    LifecycleEvent,
    SpanHop,
    TelemetryEvent,
    TelemetryHub,
    TelemetryServer,
    TelemetrySpec,
    TierTimeseries,
    WindowSpan,
    read_events,
    render_timeline,
)
from .transport import (
    FabricTransport,
    InProcessTransport,
    MergerStats,
    MultiprocessTransport,
    StatsReport,
    Transport,
    TransportError,
    TRANSPORT_BACKENDS,
    WorkerHost,
    make_transport,
)
from .worker import QueryAssignment, WorkerNode

__all__ = [
    "Channel",
    "Checkpoint",
    "CheckpointStore",
    "Cluster",
    "ClusterConfig",
    "ClusterManifest",
    "DISPATCH_BACKENDS",
    "DispatchBackend",
    "DispatchHost",
    "DispatcherNode",
    "FabricDispatch",
    "FabricMerge",
    "FabricTransport",
    "FaultPlan",
    "FaultSpec",
    "Fleet",
    "FrameTruncated",
    "GaugeSample",
    "InProcessDispatch",
    "InProcessMerge",
    "InProcessTransport",
    "MERGE_BACKENDS",
    "MergeBackend",
    "MergeHost",
    "MultiprocessDispatch",
    "MultiprocessMerge",
    "make_dispatch",
    "make_merge",
    "LatencyBuckets",
    "LatencyTracker",
    "LifecycleEvent",
    "MergerNode",
    "MergerStats",
    "MigrationRecord",
    "MultiprocessTransport",
    "RoleHost",
    "SINK_KINDS",
    "SinkSpec",
    "SubscriberSink",
    "build_sink",
    "load_manifest",
    "parse_address",
    "parse_fault_plan",
    "register_role",
    "resolve_role",
    "serve",
    "serve_loop",
    "DedupProfile",
    "MatchProfile",
    "PeriodSampleCollector",
    "ProfileReport",
    "ProfilingSpec",
    "QueryAssignment",
    "RecoveryEvent",
    "RouteProfile",
    "StackSampler",
    "profile_text",
    "RecoveryReport",
    "RoutingDecision",
    "RunReport",
    "SnapshotAssignments",
    "SpanHop",
    "StatsReport",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetryServer",
    "TelemetrySpec",
    "TierTimeseries",
    "Transport",
    "TransportError",
    "TRANSPORT_BACKENDS",
    "WindowSpan",
    "WorkerHost",
    "WorkerNode",
    "WorkerSnapshot",
    "decode_checkpoint",
    "encode_checkpoint",
    "make_transport",
    "read_events",
    "render_timeline",
    "utilization_latency",
]
