"""Sharded dispatch: GridT routing as its own parallel pipeline stage.

The paper's PS2Stream deployment scales *dispatchers* exactly like
workers: Figure 9 charges the routing-structure memory once per
dispatcher and Figure 11 grows both tiers together.  Until this module
existed, the reproduction only parallelised the worker tier — all GridT
routing ran serially on the coordinator, so ``--dispatchers`` changed the
simulated accounting but never bought real parallelism.

This module makes the dispatcher tier real.  The stream window is
partitioned across ``N`` dispatcher **shards** — shard ``s`` owns the
tuples whose round-robin dispatcher slot is ``s``, the exact assignment
the serial engine already simulates — and each shard routes its slice on
its **own replica** of the routing index:

* every shard applies *every* query insertion/deletion to its replica (an
  update's H2 effect must be visible to all later objects, whichever
  shard routes them), mirroring the paper's model where each dispatcher
  holds a full copy of the routing structure;
* each shard routes only its *own* objects — the expensive part of
  dispatch (per-term H2 probes, worker-set unions) — and returns one
  position-tagged decision per object;
* the coordinator merges the shard replies by stream position into one
  :class:`RoutedWindow` and replays the deferred-barrier segmentation of
  the batched engine over it, so each worker receives exactly the same
  ordered ``RouteBatch`` messages the serial path would have produced —
  reports stay byte-identical to single-threaded routing.

Backends mirror the worker transport of :mod:`.transport`:

* :class:`InProcessDispatch` — the reference.  Shard replicas live in the
  coordinator's interpreter (built by a pickle round trip, the same
  construction the remote hosts use) and ``submit_window`` routes
  synchronously.
* :class:`FabricDispatch` — one fabric endpoint per shard
  (:mod:`repro.runtime.fabric`): a local OS process over a pickled pipe
  (``multiprocess``) or a ``repro serve --role dispatcher`` endpoint over
  TCP (``socket``).  ``submit_window`` only ships the slices; the
  coordinator collects window ``K``'s replies *before* submitting ``K+1``
  and runs worker matching of window ``K`` *after* submitting ``K+1``, so
  shard routing of the next window overlaps worker matching of the
  current one (the dispatcher→worker pipelining of the paper's topology).

Replica consistency: stream updates keep the replicas in sync
incrementally.  Out-of-band H1 mutations — Section V cell migrations,
Phase I text splits, routing-index swaps — go through
``Cluster.invalidate_routing_caches``, which bumps a routing version; the
cluster re-ships a version-stamped snapshot of its authoritative index to
every shard before the next routed window (one sync per adjustment round,
not per mutation).  Adjustment rounds additionally fence the shards with
the same :class:`~repro.runtime.transport.AdjustBarrier` epoch message
the worker tier uses, so no shard routes against pre-adjustment state.

Routing on per-process replicas is only deterministic because the
routing index itself is: posting-keyword iteration is sorted and the
uncovered-cell fallback hashes with ``crc32`` (see
:mod:`repro.indexes.gridt`), so two replicas in different interpreters
always produce identical decisions and identical per-worker plans.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.geometry import Point
from ..core.objects import StreamTuple, TupleKind
from ..indexes.grid import CellCoord
from .fabric import (
    Fleet,
    RoleHost,
    TransportError,
    assign_addresses,
    connect_fleet,
    register_role,
    spawn_fleet,
    spawn_socket_fleet,
)
from .profiling import ProfileDrain, RouteCounters, RouteProfile
from .telemetry import GaugeSample, TelemetryBatch, TelemetryDrain

__all__ = [
    "DISPATCH_BACKENDS",
    "DispatchBackend",
    "DispatchHost",
    "FabricDispatch",
    "InProcessDispatch",
    "MultiprocessDispatch",
    "RoutedWindow",
    "TupleRouting",
    "make_dispatch",
]

#: One update's per-worker ``(cell, posting keyword)`` routing plan.
WorkerPlan = Dict[int, List[Tuple[CellCoord, str]]]

#: The wire form of an object heading for routing: ``(position, x, y,
#: terms)``.  Routing reads exactly an object's location and term set, so
#: that is all that crosses a shard pipe — a full
#: :class:`~repro.core.objects.SpatioTextualObject` would drag its raw
#: text and metadata along for nothing.
ObjectProbe = Tuple[int, float, float, Any]


class _RoutingProbe:
    """Lightweight stand-in exposing the two fields routing reads.

    ``GridTIndex.route_object(_batch)`` only touches ``location`` and
    ``terms``; reconstructing this probe on the shard (in parallel) is
    cheaper than pickling whole objects on the coordinator (serially).
    """

    __slots__ = ("location", "terms")

    def __init__(self, location: Point, terms: Any) -> None:
        self.location = location
        self.terms = terms


# ----------------------------------------------------------------------
# Messages (coordinator <-> dispatch shard)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RouteWindow:
    """Coordinator→shard: one window slice to route.

    ``objects`` carries only the shard's *owned* objects as compact
    :data:`ObjectProbe` entries; ``updates`` carries every update of the
    window (position, tuple) because all replicas must apply them.
    ``base`` is the round-robin dispatcher slot of window position 0,
    from which the shard derives which updates it owns (and must return
    plans for).
    """

    seq: int
    base: int
    objects: Sequence[ObjectProbe]
    updates: Sequence[Tuple[int, StreamTuple]]


@dataclass(slots=True)
class WindowRouting:
    """Shard→coordinator: the shard's routed slice, tagged by position.

    ``decisions`` holds one ``(position, sorted worker tuple)`` entry per
    owned object; ``plans`` one ``(position, is_insert, per-worker plan,
    probed cells)`` entry per owned update.
    """

    seq: int
    decisions: Sequence[Tuple[int, Tuple[int, ...]]]
    plans: Sequence[Tuple[int, bool, WorkerPlan, int]]


@dataclass(slots=True)
class RouteProbe:
    """Coordinator→shard: route one object (per-tuple reference path).

    Objects go only to their owner shard, as the same compact probe the
    windowed path ships.
    """

    x: float
    y: float
    terms: Any


@dataclass(slots=True)
class RouteUpdate:
    """Coordinator→shard: route one query update (per-tuple path).

    Broadcast so every replica applies the H2 delta; only the owner
    (``owner=True``) returns the routing plan.
    """

    item: StreamTuple
    owner: bool


@dataclass(slots=True)
class TupleRouting:
    """Shard→coordinator reply to :class:`RouteTuple`."""

    workers: Tuple[int, ...]
    plan: Optional[WorkerPlan]
    cells: int


@dataclass(slots=True)
class SyncRoutingIndex:
    """Coordinator→shard: replace the replica with a pickled snapshot."""

    payload: bytes
    version: int


@dataclass(slots=True)
class ShardMemoryRequest:
    """Coordinator→shard: measure the replica's routing-structure memory."""


@dataclass(slots=True)
class RoutedWindow:
    """One window's merged routing, reassembled in stream order.

    The deterministic merge of all shard replies: ``decisions`` maps every
    object position to its sorted worker tuple, ``plans`` every update
    position to ``(is_insert, per-worker plan, probed cells)``.  The
    cluster replays its deferred-barrier segmentation over these exactly
    as if it had routed the window itself.
    """

    decisions: Dict[int, Tuple[int, ...]]
    plans: Dict[int, Tuple[bool, WorkerPlan, int]]


def group_triples(
    triples: Iterable[Tuple[CellCoord, str, int]]
) -> WorkerPlan:
    """Group ``(cell, keyword, worker)`` triples into a per-worker plan."""
    per_worker: WorkerPlan = {}
    for coord, key, worker in triples:
        pairs = per_worker.get(worker)
        if pairs is None:
            per_worker[worker] = [(coord, key)]
        else:
            pairs.append((coord, key))
    return per_worker


def _split_window(
    items: Sequence[StreamTuple], base: int, num_shards: int
) -> Tuple[List[List[ObjectProbe]], List[Tuple[int, StreamTuple]]]:
    """Partition one window: object probes by owner shard, updates for all."""
    object_slices: List[List[ObjectProbe]] = [[] for _ in range(num_shards)]
    updates: List[Tuple[int, StreamTuple]] = []
    object_kind = TupleKind.OBJECT
    for position, item in enumerate(items):
        if item.kind is object_kind:
            obj = item.payload
            location = obj.location
            object_slices[(base + position) % num_shards].append(
                (position, location.x, location.y, obj.terms)
            )
        else:
            updates.append((position, item))
    return object_slices, updates


# ----------------------------------------------------------------------
# The shard routing engine (shared by all backends)
# ----------------------------------------------------------------------
class _ShardRouter:
    """One dispatch shard: a routing-index replica plus its caches.

    Runs in the coordinator's interpreter (in-process backend) or inside a
    shard host process (fabric backends); either way it executes the
    exact same :class:`~repro.indexes.gridt.GridTIndex` calls the serial
    engine would, so its decisions and plans are byte-identical to
    coordinator routing.
    """

    __slots__ = ("shard_id", "num_shards", "index", "insertion_plans", "profile")

    def __init__(self, shard_id: int, num_shards: int, profiling: bool = False) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.index = None
        #: query id -> (per-worker plan, probed cells); mirrors the batched
        #: engine's insertion-assignment cache so deletions reuse their
        #: insertion's plan.  Dropped on every snapshot sync, exactly when
        #: the cluster drops its own cache.
        self.insertion_plans: Dict[int, Tuple[WorkerPlan, int]] = {}
        #: Router-owned profiling counters; re-attached to every freshly
        #: unpickled replica by :meth:`sync` so a run's profile survives
        #: snapshot syncs (and the coordinator's own counters never leak
        #: into shard attribution through the pickle).
        self.profile: Optional[RouteCounters] = RouteCounters() if profiling else None

    def sync(self, index: Any) -> None:
        self.index = index
        index.profile = self.profile
        self.insertion_plans.clear()

    def route_window(
        self,
        objects: Sequence[ObjectProbe],
        updates: Sequence[Tuple[int, StreamTuple]],
        base: int,
    ) -> Tuple[
        List[Tuple[int, Tuple[int, ...]]],
        List[Tuple[int, bool, WorkerPlan, int]],
    ]:
        """Route one window slice in stream order.

        Every update is applied to the replica at its stream position so
        later objects observe its H2 effect; runs of owned objects between
        updates are routed through ``route_object_batch`` (the same code
        path, route cache included, the serial batched engine uses).
        """
        index = self.index
        if index is None:
            raise TransportError("dispatch shard %d routed before sync" % self.shard_id)
        decisions: List[Tuple[int, Tuple[int, ...]]] = []
        plans: List[Tuple[int, bool, WorkerPlan, int]] = []
        cache = self.insertion_plans
        route_batch = index.route_object_batch
        insert_kind = TupleKind.INSERT
        oi = 0
        total = len(objects)
        for upos, item in updates:
            start = oi
            while oi < total and objects[oi][0] < upos:
                oi += 1
            if oi > start:
                run = objects[start:oi]
                for (position, _, _, _), decision in zip(
                    run,
                    route_batch(
                        [_RoutingProbe(Point(x, y), terms) for _, x, y, terms in run]
                    ),
                ):
                    decisions.append((position, decision))
            query = item.payload.query
            if item.kind is insert_kind:
                per_worker, cells = index.insertion_plan_apply(query)
                cache[query.query_id] = (per_worker, cells)
                is_insert = True
            else:
                cached = cache.pop(query.query_id, None)
                if cached is not None:
                    per_worker, cells = cached
                else:
                    triples, cells = index.posting_assignments(query)
                    per_worker = group_triples(triples)
                index.apply_deletion_pairs(per_worker)
                is_insert = False
            if (base + upos) % self.num_shards == self.shard_id:
                plans.append((upos, is_insert, per_worker, cells))
        if oi < total:
            run = objects[oi:]
            for (position, _, _, _), decision in zip(
                run,
                route_batch(
                    [_RoutingProbe(Point(x, y), terms) for _, x, y, terms in run]
                ),
            ):
                decisions.append((position, decision))
        return decisions, plans

    def route_probe(self, x: float, y: float, terms: Any) -> TupleRouting:
        """Route one object (per-tuple reference path)."""
        index = self.index
        if index is None:
            raise TransportError("dispatch shard %d routed before sync" % self.shard_id)
        workers = index.route_object(_RoutingProbe(Point(x, y), terms))
        return TupleRouting(tuple(sorted(workers)), None, 0)

    def route_update(self, item: StreamTuple, owner: bool) -> TupleRouting:
        """Route one query update (per-tuple reference path).

        Mirrors ``DispatcherNode.route`` on the replica: insertions place
        and record their posting assignments, deletions recompute them
        (the per-tuple path never caches, matching the serial reference)
        — identical decisions, identical plans.
        """
        index = self.index
        if index is None:
            raise TransportError("dispatch shard %d routed before sync" % self.shard_id)
        query = item.payload.query
        if item.kind is TupleKind.INSERT:
            triples, cells = index.insertion_assignments(query)
            index.apply_insertion(triples)
        else:
            triples, cells = index.posting_assignments(query)
            index.apply_deletion(triples)
        per_worker = group_triples(triples)
        return TupleRouting(
            tuple(sorted(per_worker)), per_worker if owner else None, cells
        )

    def memory_bytes(self) -> int:
        return self.index.memory_bytes() if self.index is not None else 0


# ----------------------------------------------------------------------
# Backend interface
# ----------------------------------------------------------------------
class DispatchBackend:
    """Coordinator-side surface of the sharded dispatch stage.

    The cluster drives it with a strict window protocol: ``sync`` (when
    the routing version moved), ``submit_window``, ``collect_window`` —
    at most one window outstanding — plus ``route_tuple`` on the per-tuple
    path, ``barrier`` at adjustment fences and ``shard_memory`` for the
    Figure 9 per-dispatcher memory report.
    """

    backend_name = "abstract"
    #: Whether collect/submit may be interleaved across consecutive
    #: windows so shard routing overlaps worker matching.
    supports_pipelining = False
    num_shards: int = 0
    #: Routing version of the last snapshot shipped to the shards; the
    #: cluster re-syncs whenever its own version differs.
    synced_version: int = -1

    def sync(self, routing_index: Any, version: int) -> None:
        """Ship a snapshot of the routing index to every shard replica."""
        raise NotImplementedError

    def submit_window(self, items: Sequence[StreamTuple], base: int) -> int:
        """Start routing one window; returns its sequence number."""
        raise NotImplementedError

    def collect_window(self, seq: int) -> RoutedWindow:
        """Gather and merge the shard replies of window ``seq``."""
        raise NotImplementedError

    def route_tuple(self, slot: int, item: StreamTuple) -> TupleRouting:
        """Route one tuple on the shard owning dispatcher slot ``slot``."""
        raise NotImplementedError

    def barrier(self) -> int:
        """Fence every shard with a new AdjustBarrier epoch."""
        raise NotImplementedError

    def shard_memory(self) -> Dict[int, int]:
        """Measured routing-structure bytes per shard replica (Figure 9)."""
        raise NotImplementedError

    def install_fault_plan(self, faults: Sequence[Any]) -> None:
        """Arm injected faults on this backend's send path (chaos tests).

        The in-process reference has no transport to fault; default no-op.
        """

    def drain_telemetry(self) -> List[GaugeSample]:
        """One gauge sample per shard replica, in ascending shard order.

        Shard-side gauges carry replica memory and route-cache depth;
        the coordinator overlays the Definition-1 dispatcher busy cost
        (tracked on its own :class:`DispatcherNode` accounting) before
        recording, so one sample tells the whole dispatcher story.
        """
        raise NotImplementedError

    def drain_profile(self) -> List[RouteProfile]:
        """One profile event per profiling shard, ascending shard order.

        Empty when profiling is off (and, on the fabric backends, while
        a pipelined window is in flight — same best-effort contract as
        :meth:`drain_telemetry`).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (terminates shard processes)."""

    def __enter__(self) -> "DispatchBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- shared plumbing ----------------------------------------------
    @staticmethod
    def _merge(replies: Iterable[WindowRouting]) -> RoutedWindow:
        """Deterministic merge: shard replies in ascending shard order,
        entries keyed by stream position."""
        decisions: Dict[int, Tuple[int, ...]] = {}
        plans: Dict[int, Tuple[bool, WorkerPlan, int]] = {}
        for reply in replies:
            for position, decision in reply.decisions:
                decisions[position] = decision
            for position, is_insert, per_worker, cells in reply.plans:
                plans[position] = (is_insert, per_worker, cells)
        return RoutedWindow(decisions, plans)

    @staticmethod
    def _snapshot(routing_index: Any) -> bytes:
        """Pickle the coordinator's index once, route caches dropped.

        The route cache is a memo (never observable), so flushing it on
        the authoritative index before pickling keeps snapshots small
        without changing behaviour.
        """
        clear = getattr(routing_index, "clear_route_caches", None)
        if clear is not None:
            clear()
        return pickle.dumps(routing_index, protocol=pickle.HIGHEST_PROTOCOL)


class InProcessDispatch(DispatchBackend):
    """Reference backend: shard replicas in the coordinator's interpreter.

    Replicas are built by the same pickle round trip the remote hosts
    perform, so any snapshot the fabric backends could mis-handle fails
    here first, in-process and debuggable.
    """

    backend_name = "inprocess"
    supports_pipelining = False

    def __init__(self, num_shards: int, profiling: bool = False) -> None:
        if num_shards < 1:
            raise ValueError("dispatch needs at least one shard")
        self.num_shards = num_shards
        self._routers = [
            _ShardRouter(shard, num_shards, profiling) for shard in range(num_shards)
        ]
        self.synced_version = -1
        self._seq = 0
        self._routed: Dict[int, RoutedWindow] = {}
        self._epoch = 0

    def sync(self, routing_index: Any, version: int) -> None:
        blob = self._snapshot(routing_index)
        for router in self._routers:
            router.sync(pickle.loads(blob))
        self.synced_version = version

    def submit_window(self, items: Sequence[StreamTuple], base: int) -> int:
        self._seq += 1
        seq = self._seq
        object_slices, updates = _split_window(items, base, self.num_shards)
        replies = [
            WindowRouting(
                seq, *router.route_window(object_slices[router.shard_id], updates, base)
            )
            for router in self._routers
        ]
        self._routed[seq] = self._merge(replies)
        return seq

    def collect_window(self, seq: int) -> RoutedWindow:
        return self._routed.pop(seq)

    def route_tuple(self, slot: int, item: StreamTuple) -> TupleRouting:
        owner = slot % self.num_shards
        if item.kind is TupleKind.OBJECT:
            obj = item.payload
            location = obj.location
            return self._routers[owner].route_probe(location.x, location.y, obj.terms)
        result: Optional[TupleRouting] = None
        for router in self._routers:
            routed = router.route_update(item, router.shard_id == owner)
            if router.shard_id == owner:
                result = routed
        assert result is not None
        return result

    def barrier(self) -> int:
        # Routing is synchronous: every submitted window was already
        # collected, so the fence reduces to bumping the epoch.
        self._epoch += 1
        return self._epoch

    def shard_memory(self) -> Dict[int, int]:
        return {router.shard_id: router.memory_bytes() for router in self._routers}

    def drain_telemetry(self) -> List[GaugeSample]:
        return [_shard_gauge(router) for router in self._routers]

    def drain_profile(self) -> List[RouteProfile]:
        return [
            event for router in self._routers for event in _shard_profile(router)
        ]


def _shard_profile(router: "_ShardRouter") -> Tuple[RouteProfile, ...]:
    """The shard's profile events — empty when profiling is off."""
    counters = router.profile
    if counters is None:
        return ()
    return (counters.event(router.shard_id),)


def _shard_gauge(router: "_ShardRouter") -> GaugeSample:
    """One telemetry gauge sample from live shard state (read-only).

    A shard replica does no Definition-1 cost accounting (the
    coordinator charges dispatcher busy cost itself, identically on
    every backend), so ``busy_cost`` is filled in coordinator-side.
    """
    return GaugeSample(
        tier="dispatcher",
        endpoint_id=router.shard_id,
        busy_cost=0.0,
        memory_bytes=router.memory_bytes(),
        depth=len(router.insertion_plans),
    )


# ----------------------------------------------------------------------
# The dispatcher role host (served by the fabric's generic serve loop)
# ----------------------------------------------------------------------
class DispatchHost(RoleHost):
    """One dispatch-shard endpoint: a :class:`_ShardRouter` behind the
    typed-message surface.  ``init`` carries ``num_shards``."""

    def __init__(self, shard_id: int, init: Mapping[str, Any]) -> None:
        self.router = _ShardRouter(
            shard_id, init["num_shards"], bool(init.get("profiling"))
        )

    def handle(self, message: Any) -> Any:
        kind = type(message)
        router = self.router
        if kind is RouteWindow:
            decisions, plans = router.route_window(
                message.objects, message.updates, message.base
            )
            return WindowRouting(message.seq, decisions, plans)
        if kind is RouteProbe:
            return router.route_probe(message.x, message.y, message.terms)
        if kind is RouteUpdate:
            return router.route_update(message.item, message.owner)
        if kind is SyncRoutingIndex:
            router.sync(pickle.loads(message.payload))
            return True
        if kind is ShardMemoryRequest:
            return router.memory_bytes()
        if kind is TelemetryDrain:
            return TelemetryBatch(router.shard_id, (_shard_gauge(router),))
        if kind is ProfileDrain:
            return TelemetryBatch(router.shard_id, _shard_profile(router))
        raise TransportError("unknown dispatch message %r" % (message,))


register_role("dispatcher", DispatchHost)


# ----------------------------------------------------------------------
# Fabric-backed dispatch (multiprocess and socket deployments)
# ----------------------------------------------------------------------
class FabricDispatch(DispatchBackend):
    """Each dispatch shard is a fabric endpoint (process or TCP service).

    ``submit_window`` ships every shard's slice without reading replies;
    the cluster collects window ``K`` before submitting ``K+1`` (at most
    one window outstanding per shard, so a request is only ever written to
    an idle host) and runs worker matching of ``K`` after the submit —
    routing of the next window overlaps matching of the current one.
    """

    supports_pipelining = True

    def __init__(self, fleet: Fleet) -> None:
        self._fleet = fleet
        self.backend_name = fleet.backend_name
        self.num_shards = len(fleet.endpoint_ids)
        self.synced_version = -1
        self._seq = 0
        self._inflight: Optional[int] = None

    # -- DispatchBackend surface --------------------------------------
    def sync(self, routing_index: Any, version: int) -> None:
        if self._inflight is not None:
            raise TransportError("cannot sync dispatch shards with a window in flight")
        blob = self._snapshot(routing_index)
        self._fleet.broadcast(SyncRoutingIndex(blob, version))
        self.synced_version = version

    def submit_window(self, items: Sequence[StreamTuple], base: int) -> int:
        if self._inflight is not None:
            raise TransportError(
                "dispatch window %d still in flight" % self._inflight
            )
        self._seq += 1
        seq = self._seq
        object_slices, updates = _split_window(items, base, self.num_shards)
        for shard_id in range(self.num_shards):
            self._fleet.send(shard_id, RouteWindow(seq, base, object_slices[shard_id], updates))
        self._inflight = seq
        return seq

    def collect_window(self, seq: int) -> RoutedWindow:
        if self._inflight != seq:
            raise TransportError(
                "collecting dispatch window %d but %r is in flight" % (seq, self._inflight)
            )
        try:
            replies = self._fleet.collect(sorted(self._fleet.endpoint_ids))
        finally:
            self._inflight = None
        for shard_id, reply in replies.items():
            if not isinstance(reply, WindowRouting) or reply.seq != seq:
                raise TransportError(
                    "dispatch shard %d answered out of sequence: %r" % (shard_id, reply)
                )
        return self._merge(replies[shard_id] for shard_id in sorted(replies))

    def route_tuple(self, slot: int, item: StreamTuple) -> TupleRouting:
        owner = slot % self.num_shards
        if item.kind is TupleKind.OBJECT:
            obj = item.payload
            location = obj.location
            return self._fleet.request(
                owner, RouteProbe(location.x, location.y, obj.terms)
            )
        replies = self._fleet.exchange(
            {
                shard_id: RouteUpdate(item, shard_id == owner)
                for shard_id in sorted(self._fleet.endpoint_ids)
            }
        )
        return replies[owner]

    def barrier(self) -> int:
        return self._fleet.barrier()

    def shard_memory(self) -> Dict[int, int]:
        return self._fleet.broadcast(ShardMemoryRequest())

    def drain_telemetry(self) -> List[GaugeSample]:
        if self._inflight is not None:
            # A routed window is outstanding (pipelined engine): a
            # replied drain now would desync the request/reply pairing.
            # Telemetry is best-effort — the coordinator still records
            # its own dispatcher busy accounting, and shard gauges
            # appear at the next quiescent drain (barrier / report).
            return []
        batches = self._fleet.broadcast(TelemetryDrain())
        return [
            sample
            for shard_id in sorted(batches)
            for sample in batches[shard_id].events
        ]

    def drain_profile(self) -> List[RouteProfile]:
        if self._inflight is not None:
            # Same best-effort contract as drain_telemetry: never desync
            # the request/reply pairing of a pipelined window.
            return []
        batches = self._fleet.broadcast(ProfileDrain())
        return [
            event
            for shard_id in sorted(batches)
            for event in batches[shard_id].events
        ]

    def install_fault_plan(self, faults: Sequence[Any]) -> None:
        self._fleet.install_fault_plan(faults)

    def close(self) -> None:
        self._fleet.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: Backwards-compatible name: the process-per-shard deployment is a
#: FabricDispatch whose fleet was spawned locally.
MultiprocessDispatch = FabricDispatch


#: Registry of the selectable dispatch backends (``--dispatch-backend``).
#: ``inline`` keeps routing on the coordinator (the pre-sharding engine).
DISPATCH_BACKENDS = ("inline", "inprocess", "multiprocess", "socket")


def make_dispatch(
    backend: str,
    num_shards: int,
    *,
    addresses: Optional[Sequence[Tuple[str, int]]] = None,
    profiling: bool = False,
) -> Optional[DispatchBackend]:
    """Build the dispatch backend; ``None`` means inline (coordinator) routing.

    ``addresses`` (socket backend only) lists the ``repro serve --role
    dispatcher`` endpoints from the cluster manifest; without it the
    coordinator spawns loopback serve processes.
    """
    if backend == "inline":
        return None
    if backend == "inprocess":
        return InProcessDispatch(num_shards, profiling)
    if backend not in ("multiprocess", "socket"):
        raise ValueError(
            "unknown dispatch backend %r (expected one of %s)"
            % (backend, ", ".join(DISPATCH_BACKENDS))
        )
    if num_shards < 1:
        raise ValueError("dispatch needs at least one shard")
    shard_ids = list(range(num_shards))
    inits = {
        shard_id: {"num_shards": num_shards, "profiling": profiling}
        for shard_id in shard_ids
    }
    if backend == "multiprocess":
        fleet = spawn_fleet("dispatcher", inits, label="dispatch shard")
    elif addresses:
        endpoint_map = assign_addresses(addresses, shard_ids, "dispatcher")
        fleet = connect_fleet("dispatcher", endpoint_map, inits, label="dispatch shard")
    else:
        fleet = spawn_socket_fleet("dispatcher", inits, label="dispatch shard")
    return FabricDispatch(fleet)
