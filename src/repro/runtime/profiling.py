"""Hot-loop profiling: deterministic cost counters + a sampling profiler.

PR 9's telemetry (:mod:`repro.runtime.telemetry`) shows *where* a window
spends wall-clock across tiers; this module shows *why* — what the three
per-core inner loops actually did:

* **GI2 matching** (:meth:`repro.indexes.gi2.GI2Index.match_batch`) —
  postings scanned, candidate checks and matches per worker, plus the
  number of cell probes, so selectivity of the term intersection and the
  region/expression filter is attributable per worker.
* **GridT routing** (:meth:`repro.indexes.gridt.GridTIndex.route_object_batch`
  and its inlined copies) — route-cache hits/misses, content-path probes
  and fallback routes (missing cell / default-worker / empty H2) per
  routing replica, so the cache's payoff and the H2 pressure are visible.
* **Merger dedup** (:meth:`repro.runtime.merger.MergerNode.handle`) —
  dedup-set lookups, duplicates suppressed and window evictions per
  shard.

Counters are **deterministic pure counts** — no wall clock anywhere near
a hot loop (lint rule RL007 bans timing calls inside ``gi2.py`` /
``gridt.py``), so two runs of the same stream produce identical profiles
and a profiled run's :class:`~repro.runtime.metrics.RunReport` is
byte-identical to an unprofiled one (the same perturbation-freedom
invariant telemetry pins; ``tests/test_profiling.py`` checks the full
backend matrix).

Counters live next to the state they observe (``GI2Index.profile``,
``GridTIndex.profile``, ``MergerNode.profile`` — ``None`` when
profiling is off) and are drained coordinator-side over the existing
control channels: the coordinator broadcasts :class:`ProfileDrain` (a
``__telemetry_control__`` message, exempt from chaos fault counting like
:class:`~repro.runtime.telemetry.TelemetryDrain`) and each role host
replies with a :class:`~repro.runtime.telemetry.TelemetryBatch` of
frozen profile events.

The optional **sampling profiler** (:class:`StackSampler`) is the
wall-clock half: a daemon thread snapshots every thread's Python stack
via ``sys._current_frames()`` at a fixed interval and aggregates the
samples into collapsed-stack lines (``frame;frame;frame count``) that
flamegraph tools consume directly.  It samples the *coordinator
process only* — under the in-process backends that covers all three
tiers; remote endpoints of the multiprocess/socket backends are outside
its reach (see docs/PROFILING.md for the caveats).

Surface: ``repro profile`` (per-tier attribution table, ``--stacks-path``
collapsed stacks, ``--json``), ``ClusterConfig.profiling`` /
``--profile`` on the workload commands.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DedupCounters",
    "DedupProfile",
    "MatchCounters",
    "MatchProfile",
    "ProfileDrain",
    "ProfileEvent",
    "ProfileReport",
    "ProfilingSpec",
    "RouteCounters",
    "RouteProfile",
    "StackSampler",
    "decode_profile_event",
    "encode_profile_event",
    "profile_text",
]


# ----------------------------------------------------------------------
# The typed profile-event vocabulary
# ----------------------------------------------------------------------
class ProfileEvent:
    """Base class of every profile event (lint rule RL007 anchors here)."""

    __slots__ = ()


@dataclass(slots=True, frozen=True)
class MatchProfile(ProfileEvent):
    """One worker's GI2 matching counters for the run so far.

    Invariant (checked by ``tests/test_profiling.py``):
    ``postings_scanned >= candidates >= matches`` — every candidate check
    walks a posting entry, and every match passed a candidate check
    (``candidates`` skips postings already matched or lazily deleted, so
    it can undercut ``postings_scanned``).
    """

    endpoint_id: int
    cells_probed: int
    postings_scanned: int
    candidates: int
    matches: int


@dataclass(slots=True, frozen=True)
class RouteProfile(ProfileEvent):
    """One routing replica's GridT counters for the run so far.

    ``endpoint_id`` is the dispatch shard id, or ``-1`` for the
    coordinator's inline routing (the ``inline`` dispatch backend and
    the batched engine's fused arrival scan).  Invariants:
    ``cache_hits + cache_misses == probes`` (every content-path probe
    either hit the route-cache or computed — and counted — a miss) and
    ``probes + fallback_routes == cells_probed`` (every routed object
    probes exactly one cell and takes exactly one of the two paths).
    """

    endpoint_id: int
    cells_probed: int
    probes: int
    cache_hits: int
    cache_misses: int
    fallback_routes: int


@dataclass(slots=True, frozen=True)
class DedupProfile(ProfileEvent):
    """One merger shard's dedup counters for the run so far.

    ``lookups`` counts dedup-set membership tests (one per received
    result), ``duplicates`` the results suppressed, ``evictions`` the
    keys pushed out of the sliding window.  Unlike the period counters
    of :class:`~repro.runtime.merger.MergerNode`, these survive
    ``reset_period`` — a profile always covers the whole run.
    """

    endpoint_id: int
    lookups: int
    duplicates: int
    evictions: int


@dataclass(slots=True)
class ProfileDrain:
    """Coordinator→endpoint: report your profile counters.

    A replied control message, handled by every role host.  The
    ``__telemetry_control__`` marker (read by ``Fleet._maybe_inject``)
    keeps it out of the chaos harness's fault send counters — the same
    perturbation-freedom exemption :class:`TelemetryDrain` carries.
    """

    __telemetry_control__ = True


# ----------------------------------------------------------------------
# Mutable counter holders (live on the indexes / merger nodes)
# ----------------------------------------------------------------------
class MatchCounters:
    """Mutable GI2 matching counters (plain ints; picklable)."""

    __slots__ = ("cells_probed", "postings_scanned", "candidates", "matches")

    def __init__(self) -> None:
        self.cells_probed = 0
        self.postings_scanned = 0
        self.candidates = 0
        self.matches = 0

    def event(self, endpoint_id: int) -> MatchProfile:
        return MatchProfile(
            endpoint_id=endpoint_id,
            cells_probed=self.cells_probed,
            postings_scanned=self.postings_scanned,
            candidates=self.candidates,
            matches=self.matches,
        )


class RouteCounters:
    """Mutable GridT routing counters (plain ints; picklable)."""

    __slots__ = ("cells_probed", "probes", "cache_hits", "cache_misses", "fallback_routes")

    def __init__(self) -> None:
        self.cells_probed = 0
        self.probes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.fallback_routes = 0

    def event(self, endpoint_id: int) -> RouteProfile:
        return RouteProfile(
            endpoint_id=endpoint_id,
            cells_probed=self.cells_probed,
            probes=self.probes,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            fallback_routes=self.fallback_routes,
        )


class DedupCounters:
    """Mutable merger dedup counters (plain ints; picklable)."""

    __slots__ = ("lookups", "duplicates", "evictions")

    def __init__(self) -> None:
        self.lookups = 0
        self.duplicates = 0
        self.evictions = 0

    def event(self, endpoint_id: int) -> DedupProfile:
        return DedupProfile(
            endpoint_id=endpoint_id,
            lookups=self.lookups,
            duplicates=self.duplicates,
            evictions=self.evictions,
        )


# ----------------------------------------------------------------------
# Configuration and the assembled report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfilingSpec:
    """Configuration of the profiling subsystem (coordinator-side, inert).

    ``ClusterConfig.profiling`` is ``None`` by default — profiling is
    strictly opt-in.  Only a plain ``bool`` crosses process boundaries
    (inside the Init handshake dicts), never this spec.  ``sample``
    additionally starts the wall-clock :class:`StackSampler` in the
    coordinator process.
    """

    enabled: bool = True
    #: Also run the thread-based sampling profiler (wall-clock; samples
    #: the coordinator process only).
    sample: bool = False
    #: Sampling interval of the stack sampler, in milliseconds.
    sample_interval_ms: float = 5.0


@dataclass(frozen=True)
class ProfileReport:
    """Per-tier hot-loop counters of one finished run (coordinator-side).

    One :class:`MatchProfile` per worker, one :class:`RouteProfile` per
    routing replica (``-1`` = inline coordinator routing) and one
    :class:`DedupProfile` per merger shard, each in ascending endpoint
    order.
    """

    matchers: Tuple[MatchProfile, ...]
    routers: Tuple[RouteProfile, ...]
    mergers: Tuple[DedupProfile, ...]


# ----------------------------------------------------------------------
# JSON encoding (same shape as the telemetry JSONL: an "event" tag + fields)
# ----------------------------------------------------------------------
_EVENT_TYPES = {
    "match": MatchProfile,
    "route": RouteProfile,
    "dedup": DedupProfile,
}


def encode_profile_event(event: ProfileEvent) -> Dict[str, Any]:
    """One profile event as a JSON-able dict (tagged with its kind)."""
    for tag, cls in _EVENT_TYPES.items():
        if type(event) is cls:
            payload = asdict(event)  # type: ignore[call-overload]
            payload["event"] = tag
            return payload
    raise TypeError("unknown profile event %r" % (event,))


def decode_profile_event(payload: Mapping[str, Any]) -> ProfileEvent:
    """Rebuild a profile event from its encoded dict."""
    data = dict(payload)
    tag = data.pop("event", None)
    cls = _EVENT_TYPES.get(tag)
    if cls is None:
        raise ValueError("unknown profile event tag %r" % (tag,))
    return cls(**data)


# ----------------------------------------------------------------------
# Rendering (the `repro profile` attribution table)
# ----------------------------------------------------------------------
def _endpoint(endpoint_id: int) -> str:
    return "inline" if endpoint_id < 0 else str(endpoint_id)


def _ratio(part: int, whole: int) -> str:
    return "%5.1f%%" % (100.0 * part / whole) if whole else "    --"


def profile_text(report: ProfileReport) -> str:
    """Render the per-tier hot-path attribution table."""
    lines: List[str] = ["hot-loop profile", "================"]
    lines.append("")
    lines.append("GI2 matching (per worker)")
    lines.append(
        "  %-8s %12s %12s %12s %10s %10s"
        % ("worker", "cells", "postings", "candidates", "matches", "hit rate")
    )
    total_post = total_cand = total_match = 0
    for match in report.matchers:
        total_post += match.postings_scanned
        total_cand += match.candidates
        total_match += match.matches
        lines.append(
            "  %-8s %12d %12d %12d %10d %10s"
            % (
                _endpoint(match.endpoint_id),
                match.cells_probed,
                match.postings_scanned,
                match.candidates,
                match.matches,
                _ratio(match.matches, match.candidates),
            )
        )
    lines.append(
        "  %-8s %12s %12d %12d %10d %10s"
        % ("total", "", total_post, total_cand, total_match, _ratio(total_match, total_cand))
    )
    lines.append("")
    lines.append("GridT routing (per replica; 'inline' = coordinator)")
    lines.append(
        "  %-8s %12s %12s %12s %12s %12s %10s"
        % ("replica", "cells", "probes", "cache hits", "misses", "fallback", "hit rate")
    )
    for route in report.routers:
        lines.append(
            "  %-8s %12d %12d %12d %12d %12d %10s"
            % (
                _endpoint(route.endpoint_id),
                route.cells_probed,
                route.probes,
                route.cache_hits,
                route.cache_misses,
                route.fallback_routes,
                _ratio(route.cache_hits, route.probes),
            )
        )
    lines.append("")
    lines.append("Merger dedup (per shard)")
    lines.append(
        "  %-8s %12s %12s %12s %10s"
        % ("merger", "lookups", "duplicates", "evictions", "dup rate")
    )
    for dedup in report.mergers:
        lines.append(
            "  %-8s %12d %12d %12d %10s"
            % (
                _endpoint(dedup.endpoint_id),
                dedup.lookups,
                dedup.duplicates,
                dedup.evictions,
                _ratio(dedup.duplicates, dedup.lookups),
            )
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The sampling profiler (opt-in, wall-clock, coordinator process only)
# ----------------------------------------------------------------------
class StackSampler:
    """Thread-based sampling profiler producing collapsed stacks.

    A daemon thread wakes every ``interval_ms`` and snapshots the Python
    stack of every live thread via ``sys._current_frames()``; each
    snapshot increments one collapsed-stack key
    (``thread;module.func;module.func;...``, outermost frame first).
    ``collapsed()`` renders the aggregate as ``stack count`` lines —
    the input format of ``flamegraph.pl`` / speedscope / inferno.

    Wall-clock by design, so it lives entirely outside the deterministic
    counter seam: samples never touch report state, and the sampler
    thread's own stack is excluded.  Accuracy is statistical — see
    docs/PROFILING.md for interval and GIL caveats.
    """

    def __init__(self, interval_ms: float = 5.0) -> None:
        self.interval_s = max(0.001, interval_ms / 1000.0)
        self._samples: Counter[str] = Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    @property
    def sample_count(self) -> int:
        return sum(self._samples.values())

    def _run(self) -> None:
        me = threading.get_ident()
        names: Dict[Optional[int], str] = {}
        while not self._stop.wait(self.interval_s):
            names.clear()
            for thread in threading.enumerate():
                names[thread.ident] = thread.name
            for ident, frame in sys._current_frames().items():
                if ident == me:
                    continue
                stack: List[str] = []
                while frame is not None:
                    code = frame.f_code
                    module = code.co_filename.rsplit("/", 1)[-1]
                    if module.endswith(".py"):
                        module = module[:-3]
                    stack.append("%s.%s" % (module, code.co_name))
                    frame = frame.f_back
                stack.append(names.get(ident, "thread-%d" % ident))
                self._samples[";".join(reversed(stack))] += 1

    def collapsed(self) -> List[str]:
        """The aggregated samples as collapsed-stack lines (sorted)."""
        return [
            "%s %d" % (stack, count)
            for stack, count in sorted(self._samples.items())
        ]
