"""Dispatcher processes: route the mixed tuple stream to workers.

Dispatchers (Section III-B) receive the spatio-textual object stream and
the STS query insertion/deletion requests, and forward each tuple to the
worker(s) selected by the workload-distribution strategy.  Routing is done
on the gridt index (Section IV-C); the cost of each routing decision is
accounted so that a dispatcher can become the bottleneck, exactly as the
paper argues when motivating the gridt index over the raw kdt-tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.objects import (
    QueryDeletion,
    QueryInsertion,
    SpatioTextualObject,
    StreamTuple,
    TupleKind,
)
from ..indexes.grid import CellCoord
from ..indexes.gridt import GridTIndex
from .dispatch import group_triples

__all__ = ["DispatcherNode", "RoutingDecision"]


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of routing one tuple: destination workers plus charged cost.

    For query insertions ``assignments`` carries the per-worker
    ``(cell, posting keyword)`` pairs the routing index chose, so workers
    can register only the postings actually routed to them (Section IV-C/D
    — each conjunctive clause lives on the worker owning its posting
    keyword, not on every replica).
    """

    workers: Tuple[int, ...]
    cost: float
    discarded: bool = False
    assignments: Optional[Dict[int, List[Tuple[CellCoord, str]]]] = None


class DispatcherNode:
    """One dispatcher of the PS2Stream cluster."""

    #: Cost (in the same units as the worker cost model) of one hash-map
    #: probe in the gridt index.
    PROBE_COST = 0.02
    #: Fixed per-tuple overhead (deserialisation, cell lookup).
    TUPLE_COST = 0.05

    def __init__(self, dispatcher_id: int, routing_index: GridTIndex) -> None:
        self.dispatcher_id = dispatcher_id
        self.routing_index = routing_index
        self.busy_cost = 0.0
        self.objects_routed = 0
        self.objects_discarded = 0
        self.insertions_routed = 0
        self.deletions_routed = 0
        self._last_tuple_cost = 0.0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, item: StreamTuple) -> RoutingDecision:
        """Route one stream tuple and account its cost."""
        if item.kind is TupleKind.OBJECT:
            return self._route_object(item.payload)  # type: ignore[arg-type]
        if item.kind is TupleKind.INSERT:
            return self._route_insertion(item.payload)  # type: ignore[arg-type]
        if item.kind is TupleKind.DELETE:
            return self._route_deletion(item.payload)  # type: ignore[arg-type]
        raise ValueError("unknown tuple kind %r" % (item.kind,))

    def _route_object(self, obj: SpatioTextualObject) -> RoutingDecision:
        workers = self.routing_index.route_object(obj)
        cost = self.TUPLE_COST + self.PROBE_COST * max(1, len(obj.terms))
        self.busy_cost += cost
        self._last_tuple_cost = cost
        self.objects_routed += 1
        if not workers:
            self.objects_discarded += 1
            return RoutingDecision(workers=(), cost=cost, discarded=True)
        return RoutingDecision(workers=tuple(sorted(workers)), cost=cost)

    def _route_insertion(self, insertion: QueryInsertion) -> RoutingDecision:
        query = insertion.query
        index = self.routing_index
        # ``insertion_assignments`` is the insertion-placement surface; the
        # DualRoutingIndex used during a global adjustment implements it by
        # delegating to the new strategy, so workers receive per-worker
        # (cell, keyword) plans — never full posting footprints — even
        # while the old strategy drains.
        assignments_fn = getattr(index, "insertion_assignments", None)
        if assignments_fn is None:
            assignments_fn = getattr(index, "posting_assignments", None)
        if assignments_fn is None:
            # Routing structures without the detailed surface fall back to
            # plain routing; workers then register the full posting plan.
            workers = index.route_insertion(query)
            cells = len(index.grid.cells_overlapping(query.region))
            per_worker = None
        else:
            triples, cells = assignments_fn(query)
            index.apply_insertion(triples)
            per_worker = group_triples(triples)
            workers = per_worker.keys()
        cost = self.TUPLE_COST + self.PROBE_COST * max(1, cells)
        self.busy_cost += cost
        self._last_tuple_cost = cost
        self.insertions_routed += 1
        return RoutingDecision(
            workers=tuple(sorted(workers)), cost=cost, assignments=per_worker
        )

    def _route_deletion(self, deletion: QueryDeletion) -> RoutingDecision:
        query = deletion.query
        index = self.routing_index
        assignments_fn = getattr(index, "posting_assignments", None)
        if assignments_fn is None:
            workers = index.route_deletion(query)
            cells = len(index.grid.cells_overlapping(query.region))
        else:
            triples, cells = assignments_fn(query)
            workers = index.apply_deletion(triples)
        cost = self.TUPLE_COST + self.PROBE_COST * max(1, cells)
        self.busy_cost += cost
        self._last_tuple_cost = cost
        self.deletions_routed += 1
        return RoutingDecision(workers=tuple(sorted(workers)), cost=cost)

    # ------------------------------------------------------------------
    # Batched accounting (used by Cluster.process_batch)
    # ------------------------------------------------------------------
    def account_objects(self, routed: int, discarded: int, total_cost: float) -> None:
        """Charge a batch of object routing decisions in one call."""
        self.busy_cost += total_cost
        self.objects_routed += routed
        self.objects_discarded += discarded

    def account_insertion(self, cost: float) -> None:
        self.busy_cost += cost
        self._last_tuple_cost = cost
        self.insertions_routed += 1

    def account_deletion(self, cost: float) -> None:
        self.busy_cost += cost
        self._last_tuple_cost = cost
        self.deletions_routed += 1

    def account_updates(self, insertions: int, deletions: int, total_cost: float) -> None:
        """Charge a window's worth of update routing decisions in one call."""
        self.busy_cost += total_cost
        self.insertions_routed += insertions
        self.deletions_routed += deletions

    @property
    def last_tuple_cost(self) -> float:
        return self._last_tuple_cost

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Memory of this dispatcher: its copy of the routing index."""
        return self.routing_index.memory_bytes()

    def reset_period(self) -> None:
        self.busy_cost = 0.0
        self.objects_routed = 0
        self.objects_discarded = 0
        self.insertions_routed = 0
        self.deletions_routed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DispatcherNode(id=%d)" % self.dispatcher_id
