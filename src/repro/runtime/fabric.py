"""The role-based runtime fabric under every cluster backend.

The paper's PS2Stream deployment (Section III-B) is a Storm topology of
independently running **dispatchers**, **workers** and **mergers**.  PRs
3–5 of this reproduction grew one backend seam per tier — the worker
transport, the sharded dispatch stage and the merger tier — and each of
them reimplemented the same process-spawn/pipe/exchange/drain/close
lifecycle over pickled pipes and ``SimpleQueue``s.  This module is that
lifecycle, written once:

* :class:`Channel` — one duplex typed-message link to a remote endpoint.
  Implementations: :class:`PipeChannel` (a ``multiprocessing`` pipe),
  :class:`OutboxChannel`/:class:`InboxChannel` (a multi-producer
  ``SimpleQueue`` inbox with a dedicated reply pipe — the merger tier's
  data plane) and :class:`SocketChannel` (length-prefixed frames over
  TCP, pickle protocol 5 with out-of-band buffers).
* :func:`serve_loop` — the one endpoint serve loop, parameterized by a
  **role host** (the tier logic: op execution, replica routing, shard
  dedup/delivery).  It owns the generic protocol: :class:`Shutdown`,
  :class:`AdjustBarrier` epoch fences, :class:`RemoteError` reporting
  and parked errors for fire-and-forget data-plane messages.
* :class:`Fleet` — the coordinator-side handle of ``N`` endpoints of one
  role: synchronous ``request``, submit-all-then-collect ``exchange``
  (workers run their windows concurrently), ``broadcast``, the
  adjustment ``barrier`` and an idempotent, drain-safe ``close``.
* deployment constructors — :func:`spawn_fleet` (one OS process per
  endpoint on this host), :func:`connect_fleet` (TCP endpoints from a
  host manifest) and :func:`spawn_socket_fleet` (loopback ``serve``
  processes the coordinator spawns itself, so tests and CI need no
  external orchestration).

Roles register themselves under ``worker`` / ``dispatcher`` / ``merger``
(:func:`register_role`): :mod:`repro.runtime.transport` provides the
worker host, :mod:`repro.runtime.dispatch` the dispatch-shard host and
:mod:`repro.runtime.merge` the merger-shard host.  ``repro serve --role
<role> --listen HOST:PORT`` (:func:`serve`) turns any of them into a
standalone network service; :func:`load_manifest` reads the host
manifest a coordinator wires a multi-host cluster from.

Framing (:func:`pack_frame` / :func:`read_frame`): a frame is

``[u32 buffer count][u64 payload length][u64 length per buffer]
[payload][buffer 0]…[buffer N-1]``

with the payload pickled at protocol 5 and every
:class:`pickle.PickleBuffer` the pickler surrenders shipped raw after it
— large contiguous blobs (index snapshots, batched arrays) cross the
wire without being copied into the pickle stream.  A cleanly closed
connection raises :class:`EOFError` at a frame boundary and
:class:`FrameTruncated` (an :class:`OSError`) inside one, so every
consumer's ``except (EOFError, OSError)`` treats both as endpoint death.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import pickle
import select
import socket
import struct
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AdjustBarrier",
    "BarrierAck",
    "Channel",
    "ClusterManifest",
    "FaultPlan",
    "FaultSpec",
    "Fleet",
    "FrameTruncated",
    "InboxChannel",
    "Init",
    "NO_REPLY",
    "OutboxChannel",
    "PipeChannel",
    "RemoteError",
    "RoleHost",
    "Shutdown",
    "SocketChannel",
    "TransportError",
    "assign_addresses",
    "connect_fleet",
    "dump_message",
    "load_manifest",
    "load_message",
    "pack_frame",
    "parse_address",
    "parse_fault_plan",
    "read_frame",
    "register_role",
    "resolve_role",
    "serve",
    "serve_loop",
    "spawn_fleet",
    "spawn_socket_fleet",
]


class TransportError(RuntimeError):
    """A cluster backend failed to execute a message.

    When the failure maps to one endpoint, :attr:`label` /
    :attr:`endpoint_id` name it and :attr:`died` distinguishes endpoint
    death (pipe EOF, socket reset, truncated frame) from a remote
    exception on a live endpoint — the recovery machinery keys on these
    to decide whether a partition was lost.
    """

    #: Tier label of the failed endpoint ("worker", "merger shard", ...).
    label: Optional[str] = None
    #: Endpoint id within the tier, when the failure maps to one.
    endpoint_id: Optional[int] = None
    #: True when the endpoint process/connection died (not a remote error).
    died: bool = False


class FrameTruncated(ConnectionError):
    """A socket frame ended mid-message (peer died or stream corrupted).

    An :class:`OSError` subclass on purpose: every consumer that treats
    ``(EOFError, OSError)`` as "endpoint died" handles truncation the
    same way without naming it.
    """


# ----------------------------------------------------------------------
# Generic fabric messages (shared by every role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Shutdown:
    """Terminate an endpoint host (acked, then the serve loop exits)."""


@dataclass(slots=True)
class RemoteError:
    """Endpoint→coordinator: an exception raised while executing a message."""

    message: str
    formatted_traceback: str


@dataclass(slots=True)
class AdjustBarrier:
    """Closed-loop adjustment fence: endpoints ack once fully drained."""

    epoch: int


@dataclass(slots=True)
class BarrierAck:
    """Endpoint→coordinator acknowledgement of an :class:`AdjustBarrier`."""

    epoch: int
    worker_id: int


@dataclass(slots=True)
class Init:
    """Coordinator→endpoint handshake of a network session.

    Carries the role the coordinator expects on the other end, the
    endpoint id it assigns, and the role-specific construction arguments
    (the same ``init`` mapping :func:`spawn_fleet` ships to a local
    process).  The endpoint acks with ``True`` once its host is built.
    """

    role: str
    endpoint_id: int
    init: Mapping[str, Any]


# ----------------------------------------------------------------------
# Fault injection (the chaos-testing seam of the fleet send path)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, armed on the coordinator's send path.

    Coordinator-side state only — a spec never crosses the wire, so the
    same plan drives every backend (multiprocess pipes, queue-inbox
    mergers, TCP sockets) without endpoint cooperation.  The spec fires
    once, on the ``after_sends``-th send to ``endpoint_id`` of tier
    ``role`` whose message type matches ``message_type`` (any type when
    ``None``):

    * ``kill`` — kill the endpoint process (or sever its channel) and
      swallow the send; death surfaces on the next receive;
    * ``drop`` — silently swallow one send (a lost frame);
    * ``truncate`` — ship a partial frame and sever the channel, so the
      peer sees :class:`FrameTruncated` mid-message (socket channels;
      degrades to ``kill`` elsewhere, where frames cannot be split);
    * ``delay`` — sleep ``delay_seconds`` before delivering normally.
    """

    action: str
    role: str = "worker"
    endpoint_id: int = 0
    after_sends: int = 0
    message_type: Optional[str] = None
    delay_seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A set of :class:`FaultSpec`\\ s, split per tier at install time."""

    faults: Tuple[FaultSpec, ...] = ()

    def for_role(self, role: str) -> Tuple[FaultSpec, ...]:
        """The specs targeting one tier (installed on that tier's fleet)."""
        return tuple(spec for spec in self.faults if spec.role == role)

    def __bool__(self) -> bool:
        return bool(self.faults)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a fault plan from a JSON literal or a JSON file path.

    The ``--fault-plan`` CLI form: either an inline JSON array/object
    (recognised by its first character) or the path of a file holding
    one.  Accepted shapes::

        [{"action": "kill", "role": "worker", "endpoint_id": 1,
          "after_sends": 3, "message_type": "RouteBatch"}]
        {"faults": [ ... ]}
    """
    stripped = text.strip()
    if stripped.startswith("[") or stripped.startswith("{"):
        raw = json.loads(stripped)
    else:
        with open(text, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    if isinstance(raw, dict):
        raw = raw.get("faults", [])
    if not isinstance(raw, list):
        raise ValueError("fault plan must be a JSON array or {'faults': [...]}")
    specs = []
    for entry in raw:
        if not isinstance(entry, dict) or "action" not in entry:
            raise ValueError("each fault needs at least an 'action': %r" % (entry,))
        unknown = set(entry) - {
            "action",
            "role",
            "endpoint_id",
            "after_sends",
            "message_type",
            "delay_seconds",
        }
        if unknown:
            raise ValueError("unknown fault keys %s" % ", ".join(sorted(unknown)))
        specs.append(FaultSpec(**entry))
    return FaultPlan(tuple(specs))


# ----------------------------------------------------------------------
# Framing codec (socket channels; also the unit the codec tests pin)
# ----------------------------------------------------------------------
_HEADER = struct.Struct("<I")  # number of out-of-band buffers
_LENGTH = struct.Struct("<Q")  # payload / buffer byte lengths
#: Upper bound on out-of-band buffers per frame; a header above it is
#: treated as stream corruption rather than an allocation request.
_MAX_BUFFERS = 1 << 20


def read_exact(read: Callable[[int], bytes], size: int) -> bytes:
    """Read exactly ``size`` bytes from a short-read source.

    ``read(n)`` may return fewer than ``n`` bytes (sockets do); an empty
    read inside the requested span means the stream died mid-frame and
    raises :class:`FrameTruncated`.
    """
    if size == 0:
        return b""
    chunk = read(size)
    if len(chunk) == size:
        return chunk
    if not chunk:
        raise FrameTruncated("stream closed %d bytes into a frame read" % 0)
    parts = [chunk]
    remaining = size - len(chunk)
    while remaining:
        chunk = read(remaining)
        if not chunk:
            raise FrameTruncated(
                "stream closed mid-frame: %d of %d bytes missing" % (remaining, size)
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def pack_frame(payload: bytes, buffers: Sequence[Any] = ()) -> bytes:
    """Encode one frame: lengths header, then payload, then raw buffers."""
    parts: List[Any] = [_HEADER.pack(len(buffers)), _LENGTH.pack(len(payload))]
    for buffer in buffers:
        parts.append(_LENGTH.pack(len(buffer)))
    parts.append(payload)
    parts.extend(buffers)
    return b"".join(bytes(part) if not isinstance(part, bytes) else part for part in parts)


def read_frame(read: Callable[[int], bytes]) -> Tuple[bytes, List[bytes]]:
    """Decode one frame from a short-read source.

    Raises :class:`EOFError` when the stream is cleanly closed *between*
    frames and :class:`FrameTruncated` when it dies inside one.
    """
    first = read(1)
    if not first:
        raise EOFError("connection closed")
    header = first + read_exact(read, _HEADER.size - 1)
    (num_buffers,) = _HEADER.unpack(header)
    if num_buffers > _MAX_BUFFERS:
        raise FrameTruncated("corrupt frame header: %d out-of-band buffers" % num_buffers)
    lengths_blob = read_exact(read, _LENGTH.size * (num_buffers + 1))
    sizes = [size for (size,) in _LENGTH.iter_unpack(lengths_blob)]
    payload = read_exact(read, sizes[0])
    buffers = [read_exact(read, size) for size in sizes[1:]]
    return payload, buffers


def dump_message(message: Any) -> bytes:
    """Pickle one message at protocol 5, out-of-band buffers after it."""
    pickle_buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(message, protocol=5, buffer_callback=pickle_buffers.append)
    if not pickle_buffers:
        return pack_frame(payload)
    return pack_frame(payload, [buffer.raw() for buffer in pickle_buffers])


def load_message(read: Callable[[int], bytes]) -> Any:
    """Read one frame and unpickle its message (buffers re-attached)."""
    payload, buffers = read_frame(read)
    return pickle.loads(payload, buffers=buffers)


# ----------------------------------------------------------------------
# Channels
# ----------------------------------------------------------------------
class Channel:
    """One duplex typed-message link between coordinator and endpoint.

    ``send``/``recv`` move whole messages; ``poll`` (coordinator side)
    bounds a wait so :meth:`Fleet.close` can drain without hanging on a
    dead or wedged endpoint.  ``recv`` raises :class:`EOFError` /
    :class:`OSError` when the peer is gone.
    """

    def send(self, message: Any) -> None:
        raise NotImplementedError

    def recv(self) -> Any:
        raise NotImplementedError

    def poll(self, timeout: float) -> bool:
        """Whether a message is readable within ``timeout`` seconds."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the link (never raises for an already-dead peer)."""


class PipeChannel(Channel):
    """A ``multiprocessing`` pipe connection (one process per endpoint)."""

    def __init__(self, connection: Any) -> None:
        self._connection = connection

    def send(self, message: Any) -> None:
        self._connection.send(message)

    def recv(self) -> Any:
        return self._connection.recv()

    def poll(self, timeout: float) -> bool:
        return self._connection.poll(timeout)

    def close(self) -> None:
        try:
            self._connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class OutboxChannel(Channel):
    """Coordinator side of a queue-inbox endpoint (the merger data plane).

    Sends enqueue on the endpoint's ``SimpleQueue`` inbox — shared with
    any other producer, e.g. worker hosts shipping results directly —
    and replies come back on a dedicated one-way pipe.  ``put``
    serialises and writes synchronously in the calling thread, so a
    control message enqueued after a data message is dequeued after it:
    the inbox ordering *is* the fence.
    """

    def __init__(self, inbox: Any, replies: Any) -> None:
        self.inbox = inbox
        self._replies = replies

    def send(self, message: Any) -> None:
        self.inbox.put(message)

    def recv(self) -> Any:
        return self._replies.recv()

    def poll(self, timeout: float) -> bool:
        return self._replies.poll(timeout)

    def close(self) -> None:
        try:
            self._replies.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class InboxChannel(Channel):
    """Endpoint side of a queue-inbox endpoint: recv from the queue,
    reply on the pipe."""

    def __init__(self, inbox: Any, replies: Any) -> None:
        self._inbox = inbox
        self._replies = replies

    def send(self, message: Any) -> None:
        self._replies.send(message)

    def recv(self) -> Any:
        return self._inbox.get()

    def close(self) -> None:
        try:
            self._replies.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class SocketChannel(Channel):
    """Length-prefixed pickled frames over one TCP connection."""

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass

    def send(self, message: Any) -> None:
        self._socket.sendall(dump_message(message))

    def recv(self) -> Any:
        return load_message(self._socket.recv)

    def poll(self, timeout: float) -> bool:
        readable, _, _ = select.select([self._socket], [], [], timeout)
        return bool(readable)

    def close(self) -> None:
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already torn down
            pass


# ----------------------------------------------------------------------
# Role registry + the one serve loop
# ----------------------------------------------------------------------
#: Sentinel reply for fire-and-forget messages (nothing goes back).
NO_REPLY = object()


class RoleHost:
    """One endpoint's tier logic, served by :func:`serve_loop`.

    Subclasses (``WorkerHost`` / ``DispatchHost`` / ``MergeHost``) are
    built from ``(endpoint_id, init)`` and implement :meth:`handle`;
    message types listed in :attr:`fire_and_forget` never produce a
    reply — a failure while handling one is parked and answers the next
    request instead (an unsolicited error reply would desynchronise the
    request/reply pairing of every later control message).
    """

    #: Message types handled without a reply (data-plane deliveries).
    fire_and_forget: Tuple[type, ...] = ()

    def handle(self, message: Any) -> Any:
        """Execute one message; the return value is the reply."""
        raise NotImplementedError

    def close(self) -> None:
        """Release host resources on shutdown (flush sinks, etc.)."""


#: role name -> host factory ``(endpoint_id, init) -> RoleHost``.
_ROLE_REGISTRY: Dict[str, Callable[[int, Mapping[str, Any]], RoleHost]] = {}

#: Modules that register each role on import (lazy, avoids import cycles).
_ROLE_MODULES = {
    "worker": "repro.runtime.transport",
    "dispatcher": "repro.runtime.dispatch",
    "merger": "repro.runtime.merge",
}

ROLES = tuple(sorted(_ROLE_MODULES))


def register_role(name: str, factory: Callable[[int, Mapping[str, Any]], RoleHost]) -> None:
    """Register the host factory serving ``--role name`` endpoints."""
    _ROLE_REGISTRY[name] = factory


def resolve_role(name: str) -> Callable[[int, Mapping[str, Any]], RoleHost]:
    """Look up a role's host factory, importing its module if needed."""
    factory = _ROLE_REGISTRY.get(name)
    if factory is None:
        module = _ROLE_MODULES.get(name)
        if module is None:
            raise ValueError(
                "unknown role %r (expected one of %s)" % (name, ", ".join(ROLES))
            )
        importlib.import_module(module)
        factory = _ROLE_REGISTRY[name]
    return factory


def serve_loop(host: RoleHost, endpoint_id: int, channel: Channel) -> bool:
    """Serve one endpoint until :class:`Shutdown` or channel death.

    THE endpoint lifecycle, shared by every role and every channel kind:

    * :class:`Shutdown` → close the host, ack ``True``, return ``True``;
    * :class:`AdjustBarrier` → ack the epoch.  The host is
      single-threaded and the channel is FIFO, so every earlier message
      has been fully applied — acking *is* the fence;
    * a parked data-plane error answers the next request (and skips it);
    * anything else goes to ``host.handle``; exceptions become
      :class:`RemoteError` replies (or are parked, for fire-and-forget
      message types).

    Returns whether the session ended in an orderly shutdown (``False``
    means the peer vanished — a network server may accept a new session).
    """
    fire_and_forget = host.fire_and_forget
    pending_error: Optional[RemoteError] = None
    while True:
        try:
            message = channel.recv()
        except (EOFError, OSError):
            return False
        kind = type(message)
        if kind is Shutdown:
            try:
                host.close()
            finally:
                try:
                    channel.send(True)
                except Exception:  # pragma: no cover - peer gone mid-shutdown
                    pass
            return True
        if pending_error is not None and kind not in fire_and_forget:
            # Flush only when the peer expects a reply: answering a
            # fire-and-forget message would push an unsolicited frame
            # and desync every later request/reply pair.
            try:
                channel.send(pending_error)
            except Exception:  # pragma: no cover - peer gone
                return False
            pending_error = None
            continue
        if kind is AdjustBarrier:
            try:
                channel.send(BarrierAck(message.epoch, endpoint_id))
            except Exception:  # pragma: no cover - peer gone
                return False
            continue
        try:
            reply = host.handle(message)
        except Exception as exc:
            error = RemoteError(repr(exc), traceback.format_exc())
            if kind in fire_and_forget:
                if pending_error is None:  # keep the first (root) failure
                    pending_error = error
                continue
            try:
                channel.send(error)
            except Exception:  # pragma: no cover - peer gone
                return False
            continue
        if kind in fire_and_forget or reply is NO_REPLY:
            continue
        try:
            channel.send(reply)
        except Exception:  # pragma: no cover - peer gone
            return False


# ----------------------------------------------------------------------
# Fleet: the coordinator-side surface of N endpoints of one role
# ----------------------------------------------------------------------
class Fleet:
    """Coordinator handle of one role tier (its channels + lifecycle).

    ``label`` names endpoints in errors ("worker", "dispatch shard",
    "merger shard"); ``backend_name`` is the deployment kind the tier
    classes report ("multiprocess" or "socket").  The tier backends
    (:class:`~repro.runtime.transport.FabricTransport` and friends) hold
    exactly one fleet and layer role semantics on this surface.
    """

    def __init__(
        self,
        label: str,
        channels: Dict[int, Channel],
        *,
        processes: Optional[Dict[int, Any]] = None,
        data_endpoints: Optional[Sequence[Any]] = None,
        backend_name: str = "multiprocess",
    ) -> None:
        self.label = label
        self.backend_name = backend_name
        self._channels = channels
        self._processes: Dict[int, Any] = processes if processes is not None else {}
        self._data_endpoints = tuple(data_endpoints) if data_endpoints else None
        self._epoch = 0
        self._closed = False
        #: endpoint id -> reason, for every endpoint observed dead (on the
        #: request path, via fault injection, or during :meth:`close`).
        self.dead_endpoints: Dict[int, str] = {}
        self._fault_specs: Tuple[FaultSpec, ...] = ()
        #: spec index -> matching sends seen so far (-1 once fired).
        self._fault_counts: Dict[int, int] = {}

    # -- introspection -------------------------------------------------
    @property
    def endpoint_ids(self) -> List[int]:
        return list(self._channels)

    @property
    def processes(self) -> Dict[int, Any]:
        """Endpoint processes this fleet spawned (empty for remote hosts)."""
        return self._processes

    def data_endpoints(self) -> Optional[Sequence[Any]]:
        """Per-endpoint data-plane inboxes other producers may write to
        (the merger tier's direct worker→merger shipping), or ``None``."""
        return self._data_endpoints

    # -- fault injection (testing seam) --------------------------------
    def install_fault_plan(self, faults: Sequence[FaultSpec]) -> None:
        """Arm fault specs on this fleet's send path (chaos tests)."""
        self._fault_specs = tuple(faults)
        self._fault_counts = {index: 0 for index in range(len(self._fault_specs))}

    def _maybe_inject(self, endpoint_id: int, message: Any) -> bool:
        """Fire any armed fault matching this send; True swallows the send."""
        if getattr(type(message), "__telemetry_control__", False):
            # Telemetry drains are exempt from fault counting: an armed
            # spec with message_type=None counts *every* matching send,
            # so counting them would shift when a fault fires between
            # telemetry-on and telemetry-off runs — breaking the
            # perturbation-freedom invariant chaos tests pin.
            return False
        for index, spec in enumerate(self._fault_specs):
            if spec.endpoint_id != endpoint_id:
                continue
            if spec.message_type is not None and type(message).__name__ != spec.message_type:
                continue
            seen = self._fault_counts.get(index, -1)
            if seen < 0:
                continue  # one-shot: already fired
            if seen < spec.after_sends:
                self._fault_counts[index] = seen + 1
                continue
            self._fault_counts[index] = -1
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
                return False
            if spec.action == "drop":
                return True
            if spec.action == "truncate":
                self._truncate_endpoint(endpoint_id, message)
                return True
            if spec.action == "kill":
                self.kill_endpoint(endpoint_id)
                return True
            raise ValueError("unknown fault action %r" % spec.action)
        return False

    def kill_endpoint(self, endpoint_id: int) -> None:
        """Forcibly kill one endpoint: the process if local, else its link.

        The fault-injection primitive — death is *not* reported here; it
        surfaces on the next send/receive exactly the way an organic
        crash would, so recovery code sees the same signal either way.
        """
        process = self._processes.get(endpoint_id)
        if process is not None:
            process.kill()
            process.join(timeout=10.0)
        channel = self._channels.get(endpoint_id)
        if channel is not None:
            channel.close()

    def _truncate_endpoint(self, endpoint_id: int, message: Any) -> None:
        """Ship a partial frame and sever the link (socket channels)."""
        channel = self._channels.get(endpoint_id)
        if isinstance(channel, SocketChannel):
            frame = dump_message(message)
            try:
                channel._socket.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
            channel.close()
        else:
            # Pipes/queues move whole pickled objects; a partial frame
            # cannot be expressed, so degrade to endpoint death.
            self.kill_endpoint(endpoint_id)

    def _death(self, endpoint_id: int, exc: BaseException) -> TransportError:
        """Record one endpoint death and build its structured error."""
        self.dead_endpoints.setdefault(endpoint_id, repr(exc))
        error = TransportError("%s %d died: %r" % (self.label, endpoint_id, exc))
        error.label = self.label
        error.endpoint_id = endpoint_id
        error.died = True
        return error

    # -- messaging -----------------------------------------------------
    def send(self, endpoint_id: int, message: Any) -> None:
        """Ship one message without waiting for a reply."""
        if self._fault_specs and self._maybe_inject(endpoint_id, message):
            return
        try:
            self._channels[endpoint_id].send(message)
        except (EOFError, OSError) as exc:
            raise self._death(endpoint_id, exc) from exc

    def receive(self, endpoint_id: int) -> Any:
        """Read one reply, surfacing endpoint death and remote errors."""
        try:
            reply = self._channels[endpoint_id].recv()
        except (EOFError, OSError) as exc:
            raise self._death(endpoint_id, exc) from exc
        if isinstance(reply, RemoteError):
            error = TransportError(
                "%s %d failed: %s\n%s"
                % (self.label, endpoint_id, reply.message, reply.formatted_traceback)
            )
            error.label = self.label
            error.endpoint_id = endpoint_id
            raise error
        return reply

    def request(self, endpoint_id: int, message: Any) -> Any:
        """Synchronous round trip of one control-plane message."""
        self.send(endpoint_id, message)
        return self.receive(endpoint_id)

    def collect(self, endpoint_ids: Iterable[int]) -> Dict[int, Any]:
        """Gather one reply per endpoint, consuming every pending reply.

        A failing endpoint must not leave the other endpoints' replies
        queued on their channels (a later request would read the stale
        message), so the loop keeps draining after the first error and
        re-raises it once every expected reply has been consumed.
        """
        replies: Dict[int, Any] = {}
        error: Optional[TransportError] = None
        for endpoint_id in endpoint_ids:
            try:
                replies[endpoint_id] = self.receive(endpoint_id)
            except TransportError as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return replies

    def exchange(self, messages: Mapping[int, Any]) -> Dict[int, Any]:
        """Submit every message before collecting any reply.

        The parallelism primitive of the fabric: all endpoints execute
        their messages concurrently, and the reply dict preserves
        ``messages``'s iteration order so downstream merges stay
        deterministic across backends.  A send failure does not stop the
        submit loop — survivors still receive their batches (they must
        not diverge from the coordinator just because another endpoint
        died first) — and the first error is re-raised once every
        successfully submitted endpoint has been collected.
        """
        error: Optional[TransportError] = None
        submitted: List[int] = []
        for endpoint_id, message in messages.items():
            try:
                self.send(endpoint_id, message)
            except TransportError as exc:
                if error is None:
                    error = exc
                continue
            submitted.append(endpoint_id)
        try:
            replies = self.collect(submitted)
        except TransportError as collect_error:
            raise error or collect_error
        if error is not None:
            raise error
        return replies

    def broadcast(self, message: Any) -> Dict[int, Any]:
        """Send one message to every endpoint, then gather all replies."""
        return self.exchange({endpoint_id: message for endpoint_id in self._channels})

    def barrier(self) -> int:
        """Run one :class:`AdjustBarrier` fence; returns the new epoch."""
        self._epoch += 1
        epoch = self._epoch
        acks = self.broadcast(AdjustBarrier(epoch))
        for endpoint_id, ack in acks.items():
            if not isinstance(ack, BarrierAck) or ack.epoch != epoch:
                raise TransportError(
                    "%s %d broke the adjustment fence: %r"
                    % (self.label, endpoint_id, ack)
                )
        return epoch

    # -- recovery ------------------------------------------------------
    def discard(self, endpoint_id: int, reason: str = "discarded after failure") -> None:
        """Drop one endpoint from the fleet (the recovery path).

        Closes its channel, reaps its local process if any, and records
        it in :attr:`dead_endpoints`.  Idempotent; the endpoint simply
        stops participating in ``exchange``/``broadcast``/``barrier``.
        """
        channel = self._channels.pop(endpoint_id, None)
        if channel is not None:
            channel.close()
        process = self._processes.pop(endpoint_id, None)
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self.dead_endpoints.setdefault(endpoint_id, reason)

    def resync(self, max_retries: int = 4) -> None:
        """Re-align surviving channels after an endpoint death.

        An aborted window may have left un-collected replies queued on
        surviving endpoints; a fresh :class:`AdjustBarrier` is sent to
        each and its channel drained up to the matching ack, discarding
        stale replies, so the next request/reply pair starts clean.  A
        parked fire-and-forget error is flushed by the serve loop *as*
        the reply to the barrier (which it swallows), so on a
        :class:`RemoteError` reply the barrier is re-sent — bounded by
        ``max_retries``.  Endpoints that fail during the resync are
        discarded rather than raising: resync is the cleanup step of a
        recovery already in progress.
        """
        self._epoch += 1
        epoch = self._epoch
        for endpoint_id in list(self._channels):
            channel = self._channels[endpoint_id]
            try:
                channel.send(AdjustBarrier(epoch))
            except Exception as exc:
                self.discard(endpoint_id, repr(exc))
                continue
            retries = 0
            while True:
                try:
                    reply = channel.recv()
                except Exception as exc:
                    self.discard(endpoint_id, repr(exc))
                    break
                if isinstance(reply, BarrierAck) and reply.epoch == epoch:
                    break
                if isinstance(reply, RemoteError):
                    retries += 1
                    if retries > max_retries:
                        self.discard(endpoint_id, "kept raising during resync")
                        break
                    try:
                        channel.send(AdjustBarrier(epoch))
                    except Exception as exc:
                        self.discard(endpoint_id, repr(exc))
                        break
                # Anything else is a stale reply of the aborted window.

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut every endpoint down; idempotent and hang-safe.

        Shutdown is best-effort per endpoint: the ack wait is bounded by
        ``poll`` (a wedged endpoint cannot hang the coordinator), stale
        in-flight replies queued before the ack are drained past, and a
        dead endpoint is skipped — but *recorded* in
        :attr:`dead_endpoints` (endpoint id -> reason), so callers and
        tests can tell which endpoints were already gone at close time.
        A poll timeout is treated as wedged-but-alive, not dead.
        """
        if self._closed:
            return
        self._closed = True
        for endpoint_id, channel in self._channels.items():
            try:
                channel.send(Shutdown())
            except Exception as exc:
                self.dead_endpoints.setdefault(endpoint_id, repr(exc))
                continue
            # Drain until the shutdown ack (True); a submitted-but-not-
            # collected window's reply may be queued ahead of it.
            for _ in range(64):
                try:
                    if not channel.poll(2.0):
                        break
                    if channel.recv() is True:
                        break
                except Exception as exc:
                    self.dead_endpoints.setdefault(endpoint_id, repr(exc))
                    break
        for channel in self._channels.values():
            channel.close()
        for process in self._processes.values():
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Local deployment: one OS process per endpoint
# ----------------------------------------------------------------------
def _process_host_main(
    role: str, endpoint_id: int, init: Mapping[str, Any], channel_parts: Tuple[Any, ...]
) -> None:
    """Entry point of one spawned endpoint process."""
    if channel_parts[0] == "queue":
        channel: Channel = InboxChannel(channel_parts[1], channel_parts[2])
    else:
        channel = PipeChannel(channel_parts[1])
    host = resolve_role(role)(endpoint_id, init)
    serve_loop(host, endpoint_id, channel)
    channel.close()


def spawn_fleet(
    role: str,
    inits: Mapping[int, Mapping[str, Any]],
    *,
    label: str,
    queue_inbox: bool = False,
    start_method: Optional[str] = None,
) -> Fleet:
    """One OS process per endpoint on this host (the multiprocess tier).

    ``queue_inbox`` endpoints receive through a multi-producer
    ``SimpleQueue`` (exposed via :meth:`Fleet.data_endpoints` so worker
    hosts can ship to them directly) and reply on a dedicated pipe;
    otherwise each endpoint is served over one duplex pipe.  Endpoint
    construction arguments are pickled to the child, so the fleet works
    under ``fork`` and ``spawn`` start methods alike.
    """
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing.get_context()
    )
    channels: Dict[int, Channel] = {}
    processes: Dict[int, Any] = {}
    data_endpoints: List[Any] = []
    fleet = Fleet(
        label,
        channels,
        processes=processes,
        data_endpoints=data_endpoints if queue_inbox else None,
        backend_name="multiprocess",
    )
    try:
        for endpoint_id, init in inits.items():
            if queue_inbox:
                inbox = context.SimpleQueue()
                receive_end, send_end = context.Pipe(duplex=False)
                parts: Tuple[Any, ...] = ("queue", inbox, send_end)
                channel: Channel = OutboxChannel(inbox, receive_end)
                to_close = send_end
                data_endpoints.append(inbox)
            else:
                parent_end, child_end = context.Pipe()
                parts = ("pipe", child_end)
                channel = PipeChannel(parent_end)
                to_close = child_end
            process = context.Process(
                target=_process_host_main,
                args=(role, endpoint_id, init, parts),
                name="repro-%s-%d" % (role, endpoint_id),
                daemon=True,
            )
            process.start()
            to_close.close()
            channels[endpoint_id] = channel
            processes[endpoint_id] = process
    except Exception:
        fleet.close()
        raise
    # The mutable data_endpoints list was filled after Fleet.__init__
    # snapshotted it; re-register the final tuple.
    if queue_inbox:
        fleet._data_endpoints = tuple(data_endpoints)
    return fleet


# ----------------------------------------------------------------------
# Network deployment: serve processes + TCP channels
# ----------------------------------------------------------------------
def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``host:port`` (the manifest / ``--listen`` address form)."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ValueError("expected HOST:PORT, got %r" % address)
    return host, int(port)


@dataclass(frozen=True)
class ClusterManifest:
    """The host manifest a coordinator wires a multi-host cluster from.

    Each tier lists the ``(host, port)`` endpoints of its running
    ``repro serve`` processes; an empty tier means "spawn loopback serve
    processes locally" (the coordinator orchestrates itself).
    """

    workers: Tuple[Tuple[str, int], ...] = ()
    dispatchers: Tuple[Tuple[str, int], ...] = ()
    mergers: Tuple[Tuple[str, int], ...] = ()


def load_manifest(path: str) -> ClusterManifest:
    """Read a JSON host manifest::

        {"workers": ["10.0.0.2:7101", "10.0.0.3:7101"],
         "dispatchers": ["10.0.0.4:7201"],
         "mergers": ["10.0.0.5:7301"]}

    Tiers are optional; a missing tier falls back to coordinator-spawned
    loopback serve processes.
    """
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError("manifest %s: expected a JSON object at top level" % path)
    unknown = set(raw) - {"workers", "dispatchers", "mergers"}
    if unknown:
        raise ValueError(
            "manifest %s: unknown tier keys %s" % (path, ", ".join(sorted(unknown)))
        )

    def tier(name: str) -> Tuple[Tuple[str, int], ...]:
        return tuple(parse_address(entry) for entry in raw.get(name, ()))

    return ClusterManifest(
        workers=tier("workers"), dispatchers=tier("dispatchers"), mergers=tier("mergers")
    )


def assign_addresses(
    addresses: Sequence[Tuple[str, int]], endpoint_ids: Sequence[int], label: str
) -> Dict[int, Tuple[str, int]]:
    """Map endpoint ids onto manifest addresses, in order."""
    if len(addresses) < len(endpoint_ids):
        raise ValueError(
            "manifest lists %d %s endpoint(s) but the deployment needs %d"
            % (len(addresses), label, len(endpoint_ids))
        )
    return dict(zip(endpoint_ids, addresses))


def _serve_session(role: str, channel: Channel) -> bool:
    """Serve one coordinator session; returns True on orderly Shutdown."""
    try:
        handshake = channel.recv()
    except (EOFError, OSError):
        return False
    if not isinstance(handshake, Init) or handshake.role != role:
        try:
            channel.send(
                RemoteError(
                    "expected an Init handshake for role %r, got %r" % (role, handshake),
                    "",
                )
            )
        except Exception:
            pass
        return False
    try:
        host = resolve_role(role)(handshake.endpoint_id, handshake.init)
    except Exception as exc:
        try:
            channel.send(RemoteError(repr(exc), traceback.format_exc()))
        except Exception:
            pass
        return False
    channel.send(True)
    return serve_loop(host, handshake.endpoint_id, channel)


def serve(
    role: str,
    host: str,
    port: int,
    *,
    once: bool = False,
    announce: Optional[Callable[[str, int], None]] = None,
    on_session: Optional[Callable[[], None]] = None,
) -> None:
    """Run one endpoint as a network service (``repro serve``).

    Listens on ``host:port`` (port ``0`` binds an ephemeral port,
    reported through ``announce``) and serves coordinator sessions one
    at a time: each session starts with an :class:`Init` handshake that
    names the endpoint id and construction arguments, then runs the same
    :func:`serve_loop` a local process would.  A :class:`Shutdown` from
    the coordinator ends the service; a vanished coordinator only ends
    the session (the service accepts the next one), so long-running
    hosts in a manifest survive coordinator restarts.  ``once`` serves a
    single session regardless (used by coordinator-spawned loopback
    fleets, so closing the cluster reaps the serve process).
    ``on_session`` is called once per accepted coordinator session —
    the hook behind ``repro serve --telemetry-port``'s session counter.
    """
    resolve_role(role)  # fail fast on unknown roles, before binding
    listener = socket.create_server((host, port))
    try:
        bound_host, bound_port = listener.getsockname()[:2]
        if announce is not None:
            announce(bound_host, bound_port)
        while True:
            try:
                connection, _peer = listener.accept()
            except OSError:  # pragma: no cover - listener torn down
                break
            if on_session is not None:
                on_session()
            channel = SocketChannel(connection)
            shutdown = _serve_session(role, channel)
            channel.close()
            if shutdown or once:
                break
    finally:
        listener.close()


def _loopback_serve_main(role: str, report_connection: Any) -> None:
    """Entry point of one coordinator-spawned loopback serve process."""

    def report(host: str, port: int) -> None:
        report_connection.send((host, port))
        report_connection.close()

    serve(role, "127.0.0.1", 0, once=True, announce=report)


def connect_fleet(
    role: str,
    endpoints: Mapping[int, Tuple[str, int]],
    inits: Mapping[int, Mapping[str, Any]],
    *,
    label: str,
    processes: Optional[Dict[int, Any]] = None,
    connect_timeout: float = 10.0,
) -> Fleet:
    """Wire a fleet from running ``serve`` endpoints over TCP.

    Connects to each address, performs the :class:`Init` handshake and
    waits for the ready ack, so a misconfigured manifest fails fast with
    the remote construction error instead of on the first window.
    """
    channels: Dict[int, Channel] = {}
    fleet = Fleet(label, channels, processes=processes, backend_name="socket")
    try:
        for endpoint_id, address in endpoints.items():
            try:
                sock = socket.create_connection(address, timeout=connect_timeout)
            except OSError as exc:
                raise TransportError(
                    "cannot reach %s %d at %s:%d: %r"
                    % (label, endpoint_id, address[0], address[1], exc)
                ) from exc
            sock.settimeout(None)
            channels[endpoint_id] = SocketChannel(sock)
            fleet.send(endpoint_id, Init(role, endpoint_id, inits[endpoint_id]))
        # Handshakes were all submitted before any ack is awaited, so N
        # endpoints build their state concurrently.
        for endpoint_id in endpoints:
            ready = fleet.receive(endpoint_id)
            if ready is not True:
                raise TransportError(
                    "%s %d rejected the Init handshake: %r" % (label, endpoint_id, ready)
                )
    except Exception:
        fleet.close()
        raise
    return fleet


def spawn_socket_fleet(
    role: str,
    inits: Mapping[int, Mapping[str, Any]],
    *,
    label: str,
) -> Fleet:
    """Spawn loopback ``serve`` processes and connect to them over TCP.

    The no-orchestration fallback of the socket backend: when no
    manifest lists addresses for a tier, the coordinator hosts that
    tier itself as real network endpoints on ``127.0.0.1`` — the full
    socket path (framing, handshake, serve loop) without any external
    process manager, which is what the tests and CI run.
    """
    context = multiprocessing.get_context()
    processes: Dict[int, Any] = {}
    endpoints: Dict[int, Tuple[str, int]] = {}
    try:
        reports = {}
        for endpoint_id in inits:
            receive_end, send_end = context.Pipe(duplex=False)
            process = context.Process(
                target=_loopback_serve_main,
                args=(role, send_end),
                name="repro-serve-%s-%d" % (role, endpoint_id),
                daemon=True,
            )
            process.start()
            send_end.close()
            processes[endpoint_id] = process
            reports[endpoint_id] = receive_end
        for endpoint_id, receive_end in reports.items():
            if not receive_end.poll(30.0):
                raise TransportError(
                    "loopback %s %d never announced its port" % (label, endpoint_id)
                )
            endpoints[endpoint_id] = receive_end.recv()
            receive_end.close()
    except Exception:
        for process in processes.values():
            if process.is_alive():
                process.terminate()
            process.join(timeout=1.0)
        raise
    return connect_fleet(role, endpoints, inits, label=label, processes=processes)
