"""Measurement utilities of the cluster simulator (paper Section VI).

The paper's experiments report four families of metrics: processing
throughput (tuples per second at saturation — Figures 6, 7, 11, 16),
per-tuple latency (Figure 8, including the <100 ms / 100 ms–1 s / >1 s
buckets of Figures 12(c) and 15), memory of dispatchers and workers
(Figures 9 and 10), and migration cost/time (Figures 12–14).  The classes
here accumulate those measurements during a simulated run; worker-side
numbers arrive as :class:`~repro.runtime.transport.StatsReport` messages
whichever transport backend hosts the workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .checkpoint import RecoveryReport

__all__ = [
    "JSON_IMBALANCE_CAP",
    "LatencyTracker",
    "LatencyBuckets",
    "RunReport",
    "utilization_latency",
]

#: JSON-safe stand-in for an infinite load imbalance (some worker got
#: zero load while another got work).  :meth:`RunReport.summary` — and
#: any JSONL sink serialising it — clamps to this finite cap so the
#: output stays standard JSON (``json.dump`` would otherwise emit the
#: non-standard ``Infinity`` token); any observed imbalance at the cap
#: should be read as "infinite".
JSON_IMBALANCE_CAP = 1e15


@dataclass(frozen=True)
class LatencyBuckets:
    """Fractions of tuples per latency bucket (Figures 12(c) and 15)."""

    under_100ms: float
    between_100ms_and_1s: float
    over_1s: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "<100ms": self.under_100ms,
            "[100ms, 1000ms]": self.between_100ms_and_1s,
            ">1000ms": self.over_1s,
        }


class LatencyTracker:
    """Collects per-tuple latencies (in milliseconds)."""

    def __init__(self) -> None:
        self._latencies: List[float] = []

    def record(self, latency_ms: float) -> None:
        self._latencies.append(latency_ms)

    def extend(self, latencies_ms: Iterable[float]) -> None:
        self._latencies.extend(latencies_ms)

    def __len__(self) -> int:
        return len(self._latencies)

    @property
    def values(self) -> List[float]:
        """The recorded latencies, in arrival order (a copy)."""
        return list(self._latencies)

    @property
    def mean(self) -> float:
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) using nearest-rank interpolation."""
        if not self._latencies:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(q / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def buckets(self, thresholds: Tuple[float, float] = (100.0, 1000.0)) -> LatencyBuckets:
        """Bucket the latencies at the two thresholds (milliseconds)."""
        low, high = thresholds
        if not self._latencies:
            return LatencyBuckets(1.0, 0.0, 0.0)
        total = len(self._latencies)
        under = sum(1 for value in self._latencies if value < low)
        over = sum(1 for value in self._latencies if value > high)
        middle = total - under - over
        return LatencyBuckets(under / total, middle / total, over / total)


def utilization_latency(service_ms: float, utilization: float, *, cap_ms: float = 10_000.0) -> float:
    """Latency of a tuple at a server with the given utilisation.

    A standard single-server queueing approximation: the sojourn time grows
    as ``service / (1 - rho)``.  Utilisations at or above 1 are clamped just
    below 1 so an overloaded worker yields a large but finite latency, which
    is then capped — matching how the paper reports latency outliers (e.g.
    407 ms for metric-based partitioning on STS-UK-Q1) rather than infinite
    values.
    """
    if service_ms < 0:
        raise ValueError("service time must be non-negative")
    rho = min(max(utilization, 0.0), 0.995)
    return min(service_ms / (1.0 - rho), cap_ms)


@dataclass
class RunReport:
    """Summary of one simulated run of the cluster."""

    #: Tuples processed (objects + insertions + deletions).
    tuples_processed: int = 0
    objects_processed: int = 0
    insertions_processed: int = 0
    deletions_processed: int = 0
    #: Saturation throughput in tuples per (simulated) second.
    throughput: float = 0.0
    #: Mean per-tuple latency in milliseconds at the evaluated input rate.
    mean_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    latency_buckets: Optional[LatencyBuckets] = None
    #: Definition-1 loads per worker over the run.
    worker_loads: Dict[int, float] = field(default_factory=dict)
    #: Routing-structure memory per dispatcher (bytes, Figure 9): the
    #: analytic estimate of the coordinator's index under inline dispatch,
    #: the *measured* footprint of each shard's replica under sharded
    #: dispatch (equal values while the replicas are in sync — pinned by
    #: tests/test_dispatch.py).
    dispatcher_memory: Dict[int, int] = field(default_factory=dict)
    #: Estimated GI2 memory per worker (bytes, Figure 10).
    worker_memory: Dict[int, int] = field(default_factory=dict)
    #: Matching results produced / delivered after merger deduplication.
    matches_produced: int = 0
    matches_delivered: int = 0
    #: How many worker deliveries each object needed on average.
    object_fanout: float = 0.0
    query_fanout: float = 0.0
    #: Per-merger Definition-1 busy cost and delivered/duplicate counts
    #: (merged sorted by merger id, whichever backend hosts the shards).
    merger_busy: Dict[int, float] = field(default_factory=dict)
    merger_delivered: Dict[int, int] = field(default_factory=dict)
    merger_duplicates: Dict[int, int] = field(default_factory=dict)
    #: End-to-end notification latency of delivered results (merger hop
    #: inflated by merger utilisation — the Figure 8 / 15 delivery path).
    delivery_mean_latency_ms: float = 0.0
    delivery_latency_buckets: Optional[LatencyBuckets] = None
    #: Checkpoint/recovery accounting: ``None`` on non-checkpointed runs;
    #: on checkpointed runs a RecoveryReport whose ``events`` record every
    #: recovered worker death (empty when nothing died, so fault-free
    #: checkpointed runs stay byte-identical across backends).
    recovery: Optional[RecoveryReport] = None

    @property
    def total_load(self) -> float:
        return sum(self.worker_loads.values())

    @property
    def load_imbalance(self) -> float:
        if not self.worker_loads:
            return 1.0
        minimum = min(self.worker_loads.values())
        maximum = max(self.worker_loads.values())
        if minimum <= 0.0:
            return float("inf") if maximum > 0 else 1.0
        return maximum / minimum

    @property
    def avg_dispatcher_memory_mb(self) -> float:
        if not self.dispatcher_memory:
            return 0.0
        return sum(self.dispatcher_memory.values()) / len(self.dispatcher_memory) / 1e6

    @property
    def avg_worker_memory_mb(self) -> float:
        if not self.worker_memory:
            return 0.0
        return sum(self.worker_memory.values()) / len(self.worker_memory) / 1e6

    def summary(self) -> Dict[str, float]:
        """A flat, JSON-safe dict convenient for printing bench tables.

        Every value is a finite float: an infinite :attr:`load_imbalance`
        (a zero-load worker alongside a loaded one) is clamped to
        :data:`JSON_IMBALANCE_CAP`, because ``json.dump`` would emit the
        non-standard ``Infinity`` token that strict JSON parsers reject.
        The property itself still returns the honest ``inf``.
        """
        buckets = self.delivery_latency_buckets
        recovery = self.recovery
        return {
            "tuples": float(self.tuples_processed),
            "throughput": self.throughput,
            "mean_latency_ms": self.mean_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "total_load": self.total_load,
            "imbalance": min(self.load_imbalance, JSON_IMBALANCE_CAP),
            "dispatcher_memory_mb": self.avg_dispatcher_memory_mb,
            "worker_memory_mb": self.avg_worker_memory_mb,
            "matches": float(self.matches_delivered),
            "merger_duplicates": float(sum(self.merger_duplicates.values())),
            "object_fanout": self.object_fanout,
            "query_fanout": self.query_fanout,
            "delivery_latency_ms": self.delivery_mean_latency_ms,
            "delivery_under_100ms": buckets.under_100ms if buckets else 1.0,
            "delivery_100ms_to_1s": (
                buckets.between_100ms_and_1s if buckets else 0.0
            ),
            "delivery_over_1s": buckets.over_1s if buckets else 0.0,
            "checkpoints_taken": (
                float(recovery.checkpoints_taken) if recovery else 0.0
            ),
            "recoveries": float(len(recovery.events)) if recovery else 0.0,
            "recovery_lost_tuples": (
                float(recovery.lost_tuples) if recovery else 0.0
            ),
        }
