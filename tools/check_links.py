#!/usr/bin/env python3
"""Markdown link checker for the repository's documentation.

Scans every tracked ``*.md`` file for inline links ``[text](target)`` and
verifies that

* relative file targets exist (anchors stripped first);
* in-file and cross-file ``#anchors`` match a heading of the target file,
  using GitHub's slugification (lower-case, punctuation dropped, spaces
  to dashes);
* no link points outside the repository.

External ``http(s):``/``mailto:`` links are ignored — CI must stay
deterministic and offline.  Exits non-zero listing every broken link, so
the CI docs job fails when documentation drifts from the tree.

Usage::

    python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
import unicodedata
from pathlib import Path

#: Inline markdown links; images share the syntax with a leading ``!``.
LINK_RE = re.compile(r"!?\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = unicodedata.normalize("NFKD", heading.strip().lower())
    text = re.sub(r"[`*_~\[\]()§]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    content = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match.group(1)) for match in HEADING_RE.finditer(content)}


def check_file(markdown_path: Path, root: Path) -> list:
    errors = []
    content = CODE_FENCE_RE.sub("", markdown_path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if target:
            resolved = (markdown_path.parent / target).resolve()
            if root not in resolved.parents and resolved != root:
                errors.append("%s: link escapes the repository: %s" % (markdown_path, target))
                continue
            if not resolved.exists():
                errors.append("%s: broken link target: %s" % (markdown_path, target))
                continue
        else:
            resolved = markdown_path
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                errors.append(
                    "%s: missing anchor #%s in %s"
                    % (markdown_path, anchor, resolved.relative_to(root))
                )
    return errors


def main(argv) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    markdown_files = [
        path for path in sorted(root.rglob("*.md"))
        if ".git" not in path.parts and "node_modules" not in path.parts
    ]
    errors = []
    for markdown_path in markdown_files:
        errors.extend(check_file(markdown_path, root))
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print("%d broken link(s) in %d file(s) scanned" % (len(errors), len(markdown_files)),
              file=sys.stderr)
        return 1
    print("OK: %d markdown files, all links resolve" % len(markdown_files))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
