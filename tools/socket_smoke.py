#!/usr/bin/env python
"""CI smoke of the multi-host socket deployment over loopback.

Stands up the full operator topology on one machine: 2 workers, 1
dispatcher shard and 1 merger shard as separate ``python -m repro
serve`` processes, a host manifest naming their announced addresses,
and a ``python -m repro run`` coordinator wiring the cluster from the
manifest with every tier on the ``socket`` backend.  Fails loudly if
any serve process dies, the run exits non-zero, or the endpoints do not
shut down cleanly when the coordinator closes the cluster.

Usage::

    python tools/socket_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile


SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")
ENV = dict(os.environ)
ENV["PYTHONPATH"] = SRC + os.pathsep + ENV.get("PYTHONPATH", "")

TOPOLOGY = [("workers", "worker", 2), ("dispatchers", "dispatcher", 1),
            ("mergers", "merger", 1)]

RUN_ARGS = [
    "run", "--partitioner", "hybrid", "--group", "Q1", "--mu", "500",
    "--objects", "800", "--batch-size", "256", "--workers", "2",
    "--dispatchers", "1", "--mergers", "1",
    "--backend", "socket", "--dispatch-backend", "socket",
    "--merger-backend", "socket",
]


def spawn_endpoint(role):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--role", role,
         "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=ENV,
    )
    line = process.stdout.readline().strip()
    prefix = "serving role=%s on " % role
    if not line.startswith(prefix):
        process.kill()
        raise SystemExit("serve --role %s announced %r, expected %r..."
                         % (role, line, prefix))
    address = line[len(prefix):]
    print("spawned %s endpoint at %s (pid %d)" % (role, address, process.pid))
    return process, address


def main():
    manifest = {tier: [] for tier, _role, _count in TOPOLOGY}
    endpoints = []
    try:
        for tier, role, count in TOPOLOGY:
            for _ in range(count):
                process, address = spawn_endpoint(role)
                endpoints.append((role, process))
                manifest[tier].append(address)

        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as handle:
            json.dump(manifest, handle)
            manifest_path = handle.name
        print("manifest: %s" % json.dumps(manifest))

        run = subprocess.run(
            [sys.executable, "-m", "repro"] + RUN_ARGS
            + ["--cluster", manifest_path], env=ENV,
        )
        if run.returncode != 0:
            raise SystemExit("coordinator run exited %d" % run.returncode)

        # Cluster.close() sent Shutdown to every endpoint; each serve
        # process must drain and exit 0 on its own.
        for role, process in endpoints:
            try:
                code = process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                raise SystemExit("%s endpoint pid %d did not shut down"
                                 % (role, process.pid))
            if code != 0:
                raise SystemExit("%s endpoint pid %d exited %d"
                                 % (role, process.pid, code))
        print("socket smoke OK: every endpoint served and shut down cleanly")
    finally:
        for _role, process in endpoints:
            if process.poll() is None:
                process.kill()


if __name__ == "__main__":
    main()
